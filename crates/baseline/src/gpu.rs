//! PyG-GPU (NVIDIA V100) performance and energy model.
//!
//! A roofline model: Combination GEMMs run near peak FP32 throughput;
//! Aggregation is bounded by the derated irregular-access bandwidth.
//! Coarse-grained operators each pay a kernel-launch overhead.
//!
//! The shard-partitioned variant (the one that *helps* the CPU) hurts the
//! GPU (Fig. 10b): each shard is too small to fill 5120 cores, so
//! utilization collapses and per-shard launches multiply — both effects
//! are modeled explicitly.

use hygcn_gcn::model::GcnModel;
use hygcn_gcn::workload::LayerWorkload;
use hygcn_graph::Graph;
use hygcn_mem::cast::trunc_u64;

use crate::params::GpuParams;
use crate::report::{PhaseBreakdown, PlatformReport};

/// Which algorithm variant the GPU executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuVariant {
    /// Full-graph coarse operators (stock PyG — the paper's GPU baseline).
    Naive,
    /// Shard-partitioned execution (Fig. 10b: degrades on GPU).
    Sharded {
        /// Vertices per shard interval (derived from GPU L2 in the paper).
        interval_vertices: usize,
    },
}

/// The PyG-GPU platform model.
#[derive(Debug, Clone)]
pub struct GpuModel {
    params: GpuParams,
    variant: GpuVariant,
}

impl GpuModel {
    /// Stock PyG on the V100.
    pub fn naive() -> Self {
        Self {
            params: GpuParams::default(),
            variant: GpuVariant::Naive,
        }
    }

    /// Shard-partitioned variant with intervals of `interval_vertices`.
    pub fn sharded(interval_vertices: usize) -> Self {
        Self {
            params: GpuParams::default(),
            variant: GpuVariant::Sharded { interval_vertices },
        }
    }

    /// Custom parameters.
    pub fn with_params(params: GpuParams, variant: GpuVariant) -> Self {
        Self { params, variant }
    }

    /// The parameters.
    pub fn params(&self) -> &GpuParams {
        &self.params
    }

    /// Models one layer of `model` over `graph`.
    pub fn run(&self, graph: &Graph, model: &GcnModel) -> PlatformReport {
        let w = LayerWorkload::of(graph, model, 0);
        self.run_workload(&w)
    }

    /// Models a precomputed workload.
    pub fn run_workload(&self, w: &LayerWorkload) -> PlatformReport {
        let p = &self.params;
        let (utilization, chunks) = match self.variant {
            GpuVariant::Naive => (
                (w.num_vertices as f64 / p.saturation_vertices).clamp(0.05, 1.0),
                1.0,
            ),
            GpuVariant::Sharded { interval_vertices } => {
                // A shard can never hold more vertices than the graph has.
                let effective = interval_vertices.min(w.num_vertices);
                let util = (effective as f64 / p.saturation_vertices).clamp(0.01, 1.0);
                let chunks = (w.num_vertices as f64 / interval_vertices.max(1) as f64).ceil();
                (util, chunks)
            }
        };

        // --- Aggregation phase ---
        // Gather + scatter traffic (materialized, as on CPU, but the GPU's
        // memory system streams it at derated bandwidth).
        let agg_bytes =
            w.agg_elem_ops as f64 * 4.0 * 3.0 + w.edge_bytes as f64 + w.input_feature_bytes as f64;
        let agg_mem_s = agg_bytes / (p.irregular_bw_gbs * 1e9 * utilization);
        let agg_compute_s = w.agg_elem_ops as f64 / (p.agg_gelems * 1e9 * utilization);
        let aggregation_s =
            agg_mem_s.max(agg_compute_s) + chunks * p.launch_s * p.ops_per_layer / 2.0;

        // --- Combination phase ---
        let comb_bytes =
            w.weight_bytes as f64 + w.input_feature_bytes as f64 + w.output_feature_bytes as f64;
        let gemm_s = w.combine_macs as f64 * 2.0 / (p.gemm_gflops * 1e9 * utilization);
        let comb_mem_s = comb_bytes / (p.stream_bw_gbs * 1e9);
        let combination_s = gemm_s.max(comb_mem_s) + chunks * p.launch_s * p.ops_per_layer / 2.0;

        let phases = PhaseBreakdown {
            aggregation_s,
            combination_s,
        };
        let time_s = phases.total_s();
        let dram_bytes = trunc_u64(agg_bytes + comb_bytes);
        let energy_j = p.power_w * time_s + dram_bytes as f64 * p.dram_j_per_byte;
        let bandwidth_utilization =
            (dram_bytes as f64 / time_s.max(1e-12) / (p.dram_peak_gbs * 1e9)).min(1.0);

        PlatformReport {
            time_s,
            phases,
            dram_bytes,
            energy_j,
            bandwidth_utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygcn_gcn::model::ModelKind;
    use hygcn_graph::datasets::{DatasetKey, DatasetSpec};

    use crate::cpu::CpuModel;

    fn dataset(key: DatasetKey) -> Graph {
        DatasetSpec::get(key).instantiate(0.25, 7).unwrap()
    }

    #[test]
    fn gpu_beats_cpu_substantially() {
        let g = dataset(DatasetKey::Cl);
        let m = GcnModel::new(ModelKind::Gcn, g.feature_len(), 1).unwrap();
        let cpu = CpuModel::optimized().run(&g, &m);
        let gpu = GpuModel::naive().run(&g, &m);
        let speedup = gpu.speedup_over(&cpu);
        assert!(
            speedup > 20.0 && speedup < 20_000.0,
            "gpu over cpu: {speedup}"
        );
    }

    #[test]
    fn sharding_degrades_gpu() {
        let g = dataset(DatasetKey::Pb);
        let m = GcnModel::new(ModelKind::Gcn, g.feature_len(), 1).unwrap();
        let naive = GpuModel::naive().run(&g, &m);
        let sharded = GpuModel::sharded(256).run(&g, &m);
        assert!(
            sharded.time_s > naive.time_s,
            "fig 10b: sharded {} vs naive {}",
            sharded.time_s,
            naive.time_s
        );
    }

    #[test]
    fn small_graphs_underutilize() {
        let small = dataset(DatasetKey::Cr); // ~700 vertices at 0.25 scale
        let m = GcnModel::new(ModelKind::Gcn, small.feature_len(), 1).unwrap();
        let r = GpuModel::naive().run(&small, &m);
        // Time must exceed the pure-roofline bound because of launch
        // overhead and low occupancy.
        let w = LayerWorkload::of(&small, &m, 0);
        let ideal = w.combine_macs as f64 * 2.0 / (GpuParams::default().gemm_gflops * 1e9);
        assert!(r.time_s > ideal);
    }

    #[test]
    fn energy_scales_with_time() {
        let g = dataset(DatasetKey::Pb);
        let m = GcnModel::new(ModelKind::Gin, g.feature_len(), 1).unwrap();
        let r = GpuModel::naive().run(&g, &m);
        assert!(r.energy_j >= GpuParams::default().power_w * r.time_s * 0.99);
    }

    #[test]
    fn bandwidth_utilization_bounded() {
        let g = dataset(DatasetKey::Cl);
        let m = GcnModel::new(ModelKind::Gin, g.feature_len(), 1).unwrap();
        let r = GpuModel::naive().run(&g, &m);
        assert!(r.bandwidth_utilization > 0.0 && r.bandwidth_utilization <= 1.0);
    }
}
