//! # hygcn-baseline
//!
//! Platform baselines for the HyGCN (HPCA 2020) reproduction: operational
//! models of PyTorch Geometric on the paper's Intel Xeon E5-2680 v3 pair
//! ("PyG-CPU") and NVIDIA V100 ("PyG-GPU"), plus the cache-hierarchy
//! characterization behind Fig. 2 and Table 2.
//!
//! ## Modeling approach
//!
//! The paper measures real hardware; we substitute *mechanistic
//! performance models* driven by the exact workload descriptors of
//! [`hygcn_gcn::workload::LayerWorkload`]:
//!
//! * **CPU** ([`cpu`]) — PyG executes coarse-grained operators: the
//!   Aggregation phase materializes per-edge gathered features and
//!   scatter-reduces them with poor locality (latency-bound random
//!   accumulates), while the Combination phase runs dense GEMM through
//!   MKL at high throughput but pays the measured 36% inter-thread
//!   synchronization overhead (Table 2). Constants are calibrated once,
//!   globally (not per experiment), against the paper's Fig. 2 phase
//!   breakdown and Table 2 traffic ratios.
//! * **GPU** ([`gpu`]) — a roofline model of the V100 (5120 cores @
//!   1.25 GHz, ~900 GB/s HBM2) with an efficiency derating for the
//!   irregular gather/scatter of Aggregation and per-operator launch
//!   overheads.
//! * **Cache simulator** ([`cache`]) — a real set-associative L1/L2/L3
//!   LRU hierarchy, run over the actual aggregation access trace
//!   ([`trace`]) to measure the MPKI and DRAM-bytes-per-op of Table 2 and
//!   the benefit of the shard-partitioned algorithm variant (Fig. 10a/b).
//! * **Stride prefetcher** ([`prefetch`]) — quantifies §3.1's claim that
//!   hardware prefetching covers the regular Combination walk but is
//!   ineffective on Aggregation's indirect gathers.
//!
//! Every model returns a [`report::PlatformReport`] so the benchmark
//! harness can compare platforms uniformly.

pub mod backend;
pub mod cache;
pub mod characterize;
pub mod cpu;
pub mod gpu;
pub mod params;
pub mod prefetch;
pub mod report;
pub mod trace;

pub use backend::{CpuBackend, GpuBackend};
pub use cpu::CpuModel;
pub use gpu::GpuModel;
pub use report::{PhaseBreakdown, PlatformReport};
