//! Property-based tests of simulator invariants: determinism, operation
//! accounting, and the directionality of every optimization.

#![allow(clippy::field_reassign_with_default)]

use hygcn_core::config::{HyGcnConfig, PipelineMode};
use hygcn_core::Simulator;
use hygcn_gcn::model::{GcnModel, ModelKind};
use hygcn_gcn::workload::LayerWorkload;
use hygcn_graph::{Coo, Graph};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = (Graph, usize)> {
    (8usize..64, 4usize..48).prop_flat_map(|(n, f)| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..256).prop_map(move |pairs| {
            let mut coo = Coo::new(n);
            for (a, b) in pairs {
                if a != b {
                    coo.push_undirected(a, b).expect("ids in range");
                }
            }
            coo.dedup();
            (Graph::from_coo(&coo, f), f)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The simulator is a pure function of (config, graph, model).
    #[test]
    fn deterministic((g, f) in arb_graph(), kind_idx in 0usize..4) {
        let kind = ModelKind::ALL[kind_idx];
        let m = GcnModel::new(kind, f, 7).expect("valid");
        let sim = Simulator::new(HyGcnConfig::default());
        let a = sim.simulate(&g, &m).expect("simulates");
        let b = sim.simulate(&g, &m).expect("simulates");
        prop_assert_eq!(a, b);
    }

    /// Simulated MAC counts agree exactly with the workload descriptor
    /// for non-sampling, non-pooling models.
    #[test]
    fn macs_match_workload((g, f) in arb_graph()) {
        for kind in [ModelKind::Gcn, ModelKind::Gin] {
            let m = GcnModel::new(kind, f, 7).expect("valid");
            let w = LayerWorkload::of(&g, &m, 0);
            let r = Simulator::new(HyGcnConfig::default())
                .simulate(&g, &m)
                .expect("simulates");
            prop_assert_eq!(r.macs, w.combine_macs, "{}", kind);
        }
    }

    /// GCN element-op accounting: (edges + |V| self terms) x f_in.
    #[test]
    fn elem_ops_exact((g, f) in arb_graph()) {
        let m = GcnModel::new(ModelKind::Gcn, f, 7).expect("valid");
        let r = Simulator::new(HyGcnConfig::default())
            .simulate(&g, &m)
            .expect("simulates");
        let expect = (g.num_edges() as u64 + g.num_vertices() as u64) * f as u64;
        prop_assert_eq!(r.elem_ops, expect);
    }

    /// Adding an edge never reduces simulated work.
    #[test]
    fn monotone_in_edges((g, f) in arb_graph(), a in 0u32..8, b in 8u32..16) {
        let m = GcnModel::new(ModelKind::Gcn, f, 7).expect("valid");
        let sim = Simulator::new(HyGcnConfig::default());
        let before = sim.simulate(&g, &m).expect("simulates");
        let mut coo = Coo::from_pairs(g.num_vertices(), g.edges()).expect("in range");
        coo.push_undirected(a % g.num_vertices() as u32, b % g.num_vertices() as u32)
            .expect("in range");
        coo.dedup();
        let bigger = Graph::from_coo(&coo, f);
        let after = sim.simulate(&bigger, &m).expect("simulates");
        prop_assert!(after.elem_ops >= before.elem_ops);
    }

    /// The pipeline never loses to the no-pipeline ablation, and the
    /// ablation's DRAM traffic is never smaller (it spills intermediates).
    #[test]
    fn pipeline_directionality((g, f) in arb_graph()) {
        let m = GcnModel::new(ModelKind::Gcn, f, 7).expect("valid");
        let mut cfg = HyGcnConfig::default();
        cfg.aggregation_buffer_bytes = 64 << 10; // force several chunks
        let piped = Simulator::new(cfg.clone()).simulate(&g, &m).expect("simulates");
        cfg.pipeline = PipelineMode::None;
        let serial = Simulator::new(cfg).simulate(&g, &m).expect("simulates");
        prop_assert!(piped.cycles <= serial.cycles);
        prop_assert!(piped.dram_bytes() <= serial.dram_bytes());
    }

    /// Sparsity elimination never increases DRAM traffic or cycles.
    #[test]
    fn sparsity_elimination_directionality((g, f) in arb_graph()) {
        let m = GcnModel::new(ModelKind::Gcn, f, 7).expect("valid");
        let mut cfg = HyGcnConfig::default();
        cfg.aggregation_buffer_bytes = 64 << 10;
        let with = Simulator::new(cfg.clone()).simulate(&g, &m).expect("simulates");
        cfg.sparsity_elimination = false;
        let without = Simulator::new(cfg).simulate(&g, &m).expect("simulates");
        prop_assert!(with.dram_bytes() <= without.dram_bytes());
        prop_assert!(with.sparsity_reduction >= -1e-9);
        prop_assert!(without.sparsity_reduction.abs() < 1e-9);
    }

    /// Energy, time, and utilization are finite, positive, and bounded.
    #[test]
    fn report_sanity((g, f) in arb_graph(), kind_idx in 0usize..4) {
        let kind = ModelKind::ALL[kind_idx];
        let m = GcnModel::new(kind, f, 7).expect("valid");
        let r = Simulator::new(HyGcnConfig::default())
            .simulate(&g, &m)
            .expect("simulates");
        prop_assert!(r.cycles > 0);
        prop_assert!(r.time_s > 0.0 && r.time_s.is_finite());
        prop_assert!(r.energy_j() > 0.0 && r.energy_j().is_finite());
        prop_assert!((0.0..=1.0).contains(&r.bandwidth_utilization));
        prop_assert!((-1e-9..=1.0).contains(&r.sparsity_reduction));
        prop_assert!(r.avg_vertex_latency_cycles >= 0.0);
        let (a, c, k) = r.energy.shares();
        prop_assert!((a + c + k - 1.0).abs() < 1e-6 || (a + c + k).abs() < 1e-9);
    }

    /// A bigger aggregation buffer never increases chunk count or DRAM
    /// traffic (feature reloads amortize over wider intervals).
    #[test]
    fn buffer_capacity_monotone((g, f) in arb_graph()) {
        let m = GcnModel::new(ModelKind::Gcn, f, 7).expect("valid");
        let mk = |bytes: usize| {
            Simulator::new(HyGcnConfig {
                aggregation_buffer_bytes: bytes,
                ..HyGcnConfig::default()
            })
            .simulate(&g, &m)
            .expect("simulates")
        };
        let small = mk(32 << 10);
        let large = mk(4 << 20);
        prop_assert!(large.chunks <= small.chunks);
    }
}
