//! Serial-vs-parallel determinism: `SimReport` must be **bit-identical**
//! whatever the worker count, across every pipeline mode and for both a
//! plain GCN and the two-path DiffPool model — and must also match the
//! seed reference path.
//!
//! This lives in its own integration-test binary because the thread
//! override is process-global; keeping a single `#[test]` here means no
//! concurrent test can race it.

#![allow(clippy::field_reassign_with_default)]

use hygcn_core::config::{HyGcnConfig, PipelineMode};
use hygcn_core::Simulator;
use hygcn_gcn::model::{GcnModel, ModelKind};
use hygcn_graph::generator::{rmat, RmatParams};

#[test]
fn reports_identical_for_any_thread_count() {
    let g = rmat(4096, 48_000, RmatParams::default(), 13)
        .unwrap()
        .with_feature_len(128);
    for kind in [ModelKind::Gcn, ModelKind::DiffPool] {
        let model = GcnModel::new(kind, 128, 7).unwrap();
        for pipeline in [
            PipelineMode::LatencyAware,
            PipelineMode::EnergyAware,
            PipelineMode::None,
        ] {
            for sparsity in [true, false] {
                let mut cfg = HyGcnConfig::default();
                cfg.pipeline = pipeline;
                cfg.sparsity_elimination = sparsity;
                cfg.aggregation_buffer_bytes = 1 << 20; // many chunks
                let sim = Simulator::new(cfg);

                hygcn_par::set_thread_override(Some(1));
                let serial = sim.simulate(&g, &model).unwrap();
                let reference = sim.simulate_reference(&g, &model).unwrap();

                for threads in [2usize, 3, 8] {
                    hygcn_par::set_thread_override(Some(threads));
                    let parallel = sim.simulate(&g, &model).unwrap();
                    assert_eq!(
                        serial, parallel,
                        "{kind:?} {pipeline:?} sparsity={sparsity} threads={threads}"
                    );
                }
                hygcn_par::set_thread_override(None);
                assert_eq!(
                    serial, reference,
                    "{kind:?} {pipeline:?} sparsity={sparsity} vs seed path"
                );
            }
        }
    }
}
