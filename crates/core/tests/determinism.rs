//! Serial-vs-parallel determinism: `SimReport` must be **bit-identical**
//! whatever the worker count, across every pipeline mode and for both a
//! plain GCN and the two-path DiffPool model — and must also match the
//! seed reference path.
//!
//! This lives in its own integration-test binary because the thread
//! override is process-global; keeping a single `#[test]` here means no
//! concurrent test can race it.

#![allow(clippy::field_reassign_with_default)]

use hygcn_core::config::{HyGcnConfig, PipelineMode};
use hygcn_core::Simulator;
use hygcn_gcn::model::{GcnModel, ModelKind};
use hygcn_graph::generator::{rmat, RmatParams};
use hygcn_graph::GraphBuilder;
use hygcn_mem::HbmConfig;

#[test]
fn reports_identical_for_any_thread_count() {
    let g = rmat(4096, 48_000, RmatParams::default(), 13)
        .unwrap()
        .with_feature_len(128);
    for kind in [ModelKind::Gcn, ModelKind::DiffPool] {
        let model = GcnModel::new(kind, 128, 7).unwrap();
        for pipeline in [
            PipelineMode::LatencyAware,
            PipelineMode::EnergyAware,
            PipelineMode::None,
        ] {
            for sparsity in [true, false] {
                let mut cfg = HyGcnConfig::default();
                cfg.pipeline = pipeline;
                cfg.sparsity_elimination = sparsity;
                cfg.aggregation_buffer_bytes = 1 << 20; // many chunks
                let sim = Simulator::new(cfg);

                hygcn_par::set_thread_override(Some(1));
                let serial = sim.simulate(&g, &model).unwrap();
                let reference = sim.simulate_reference(&g, &model).unwrap();

                for threads in [2usize, 3, 8] {
                    hygcn_par::set_thread_override(Some(threads));
                    let parallel = sim.simulate(&g, &model).unwrap();
                    assert_eq!(
                        serial, parallel,
                        "{kind:?} {pipeline:?} sparsity={sparsity} threads={threads}"
                    );
                }
                hygcn_par::set_thread_override(None);
                assert_eq!(
                    serial, reference,
                    "{kind:?} {pipeline:?} sparsity={sparsity} vs seed path"
                );
            }
        }
    }

    // Degenerate geometries the per-channel merge must handle without
    // special-casing: a zero-edge graph (empty aggregation batches) and
    // a single-channel stack (every segment in one queue).
    let empty = GraphBuilder::new(64).feature_len(32).build();
    let narrow_model = GcnModel::new(ModelKind::Gcn, 32, 7).unwrap();
    for (label, graph, channels) in [
        ("zero-edge", &empty, 8usize),
        ("zero-edge 1ch", &empty, 1),
        (
            "single-channel",
            &rmat(1024, 12_000, RmatParams::default(), 5)
                .unwrap()
                .with_feature_len(32),
            1,
        ),
    ] {
        for pipeline in [
            PipelineMode::LatencyAware,
            PipelineMode::EnergyAware,
            PipelineMode::None,
        ] {
            let mut cfg = HyGcnConfig::default();
            cfg.pipeline = pipeline;
            cfg.aggregation_buffer_bytes = 1 << 18;
            cfg.hbm = HbmConfig {
                channels,
                ..HbmConfig::hbm1()
            };
            let sim = Simulator::new(cfg);
            hygcn_par::set_thread_override(Some(1));
            let serial = sim.simulate(graph, &narrow_model).unwrap();
            let reference = sim.simulate_reference(graph, &narrow_model).unwrap();
            for threads in [2usize, 8] {
                hygcn_par::set_thread_override(Some(threads));
                let parallel = sim.simulate(graph, &narrow_model).unwrap();
                assert_eq!(serial, parallel, "{label} {pipeline:?} threads={threads}");
            }
            hygcn_par::set_thread_override(None);
            assert_eq!(serial, reference, "{label} {pipeline:?} vs seed path");
            assert_eq!(serial.mem_channels.len(), channels, "{label} {pipeline:?}");
        }
    }

    // The ChannelWalk fan-out branch itself, with real worker threads:
    // one batch fat enough to cross the parallelism threshold must match
    // the in-model serial drain bit-for-bit at every override.
    use hygcn_core::timeline::ChannelWalk;
    use hygcn_mem::{Hbm, MemRequest, RequestKind};
    let reqs: Vec<MemRequest> = (0..4096u64)
        .map(|i| MemRequest::read(RequestKind::InputFeatures, i * 53 * 2048, 5000))
        .collect();
    hygcn_par::set_thread_override(Some(1));
    let mut serial_hbm = Hbm::new(hygcn_mem::HbmConfig::hbm1());
    let serial_done = serial_hbm.service_batch(&reqs, 7);
    for threads in [2usize, 3, 8] {
        hygcn_par::set_thread_override(Some(threads));
        let mut walk = ChannelWalk::new(hygcn_mem::HbmConfig::hbm1());
        let done = walk.service_batch(&reqs, 7);
        assert_eq!(done, serial_done, "fan-out completion, threads={threads}");
        assert_eq!(walk.stats(), serial_hbm.stats(), "threads={threads}");
        assert_eq!(
            walk.channel_stats(),
            serial_hbm.channel_stats(),
            "threads={threads}"
        );
    }
    hygcn_par::set_thread_override(None);
}
