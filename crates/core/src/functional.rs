//! Functional execution on the 32-bit fixed-point datapath.
//!
//! HyGCN computes in 32-bit fixed point, which the paper states "is
//! enough to maintain the accuracy of GCN inference" (§5.2.1). This
//! module executes one model layer entirely in Q16.16 — aggregation
//! accumulates and systolic MACs — and is validated against the `f32`
//! golden model of [`hygcn_gcn::reference`]. It doubles as the
//! correctness oracle for the cycle model's operation counting.

use hygcn_gcn::aggregate::{norm_coeff, Aggregator, SelfTerm};
use hygcn_gcn::model::{GcnModel, PhaseOrder};
use hygcn_gcn::GcnError;
use hygcn_graph::sampling::Sampler;
use hygcn_graph::Graph;
use hygcn_tensor::fixed::{quantize, Fixed32};
use hygcn_tensor::Matrix;

/// Executes one layer of `model` in fixed point and returns the result
/// converted back to `f32`.
///
/// Follows the same phase order and sampling seed as the reference
/// executor so outputs are directly comparable.
///
/// # Errors
///
/// Returns [`GcnError::FeatureShape`] if `x` does not match.
pub fn run_fixed(
    graph: &Graph,
    x: &Matrix,
    model: &GcnModel,
    sample_seed: u64,
) -> Result<Matrix, GcnError> {
    let expected = (graph.num_vertices(), model.feature_len());
    if x.shape() != expected {
        return Err(GcnError::FeatureShape {
            expected,
            found: x.shape(),
        });
    }
    let policy = model.kind().sample_policy();
    let sampled;
    let g = if policy.is_sampling() {
        sampled = Sampler::new(sample_seed).sample(graph, policy);
        &sampled
    } else {
        graph
    };

    let qx = quantize_matrix(x);
    let out = match model.kind().phase_order() {
        PhaseOrder::CombineFirst => {
            let combined = combine_fixed(&qx, model)?;
            aggregate_fixed(g, &combined, model)
        }
        PhaseOrder::AggregateFirst => {
            let aggregated = aggregate_fixed(g, &qx, model);
            combine_fixed(&aggregated, model)?
        }
    };
    Ok(dequantize_matrix(&out, graph.num_vertices()))
}

type QMatrix = Vec<Vec<Fixed32>>;

fn quantize_matrix(x: &Matrix) -> QMatrix {
    (0..x.rows()).map(|r| quantize(x.row(r))).collect()
}

fn dequantize_matrix(q: &QMatrix, rows: usize) -> Matrix {
    let cols = q.first().map_or(0, Vec::len);
    let mut m = Matrix::zeros(rows, cols);
    for (r, row) in q.iter().enumerate() {
        for (c, v) in row.iter().enumerate() {
            m[(r, c)] = v.to_f32();
        }
    }
    m
}

fn aggregate_fixed(g: &Graph, x: &QMatrix, model: &GcnModel) -> QMatrix {
    let agg = model.kind().aggregator();
    let self_term = model.kind().self_term();
    let f = x.first().map_or(0, Vec::len);
    let mut out = Vec::with_capacity(g.num_vertices());
    for v in 0..g.num_vertices() as u32 {
        let neighbors = g.in_neighbors(v);
        let mut count = neighbors.len();
        let mut acc = vec![init_value(agg); f];
        for &u in neighbors {
            let w = edge_weight(g, agg, u, v);
            fold_fixed(agg, &mut acc, &x[u as usize], w);
        }
        match self_term {
            SelfTerm::None => {}
            SelfTerm::Include => {
                let w = edge_weight(g, agg, v, v);
                fold_fixed(agg, &mut acc, &x[v as usize], w);
                count += 1;
            }
            SelfTerm::Weighted(s) => {
                let s = Fixed32::from_f32(s);
                for (a, &b) in acc.iter_mut().zip(&x[v as usize]) {
                    *a = a.mac(s, b);
                }
                count += 1;
            }
        }
        if count == 0 {
            acc.iter_mut().for_each(|a| *a = Fixed32::ZERO);
        } else if agg == Aggregator::Mean {
            let inv = Fixed32::from_f32(1.0 / count as f32);
            for a in acc.iter_mut() {
                *a = *a * inv;
            }
        }
        out.push(acc);
    }
    out
}

fn init_value(agg: Aggregator) -> Fixed32 {
    match agg {
        Aggregator::Max => Fixed32::MIN,
        Aggregator::Min => Fixed32::MAX,
        _ => Fixed32::ZERO,
    }
}

fn edge_weight(g: &Graph, agg: Aggregator, u: u32, v: u32) -> Fixed32 {
    if agg.needs_norm() {
        Fixed32::from_f32(norm_coeff(g, u, v))
    } else {
        Fixed32::ONE
    }
}

fn fold_fixed(agg: Aggregator, acc: &mut [Fixed32], x: &[Fixed32], w: Fixed32) {
    match agg {
        Aggregator::Add | Aggregator::Mean => {
            for (a, &b) in acc.iter_mut().zip(x) {
                *a = *a + b;
            }
        }
        Aggregator::NormalizedAdd => {
            for (a, &b) in acc.iter_mut().zip(x) {
                *a = a.mac(w, b);
            }
        }
        Aggregator::Max => {
            for (a, &b) in acc.iter_mut().zip(x) {
                *a = (*a).max(b);
            }
        }
        Aggregator::Min => {
            for (a, &b) in acc.iter_mut().zip(x) {
                *a = (*a).min(b);
            }
        }
    }
}

fn combine_fixed(x: &QMatrix, model: &GcnModel) -> Result<QMatrix, GcnError> {
    let mut out = Vec::with_capacity(x.len());
    for row in x {
        let mut cur: Vec<Fixed32> = row.clone();
        for layer in model.combine().mlp().layers() {
            let w = layer.weight();
            let qb = quantize(layer.bias());
            let mut next = Vec::with_capacity(w.rows());
            for (r, &bias) in qb.iter().enumerate() {
                let qrow = quantize(w.row(r));
                let mut acc = bias;
                for (&a, &b) in qrow.iter().zip(&cur) {
                    acc = acc.mac(a, b);
                }
                next.push(acc.relu());
            }
            cur = next;
        }
        out.push(cur);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygcn_gcn::model::ModelKind;
    use hygcn_gcn::reference::ReferenceExecutor;
    use hygcn_graph::generator::preferential_attachment;

    fn setup(kind: ModelKind, f: usize) -> (Graph, Matrix, GcnModel) {
        let g = preferential_attachment(64, 3, 1)
            .unwrap()
            .with_feature_len(f);
        let x = Matrix::random(64, f, 0.5, 2);
        let m = GcnModel::new(kind, f, 3).unwrap();
        (g, x, m)
    }

    #[test]
    fn fixed_matches_float_for_gcn() {
        let (g, x, m) = setup(ModelKind::Gcn, 32);
        let golden = ReferenceExecutor::new().run(&g, &x, &m).unwrap();
        let fixed = run_fixed(&g, &x, &m, 0x4759).unwrap();
        let diff = golden.features.max_abs_diff(&fixed).unwrap();
        assert!(diff < 0.05, "max diff {diff}");
    }

    #[test]
    fn fixed_matches_float_for_gin() {
        let (g, x, m) = setup(ModelKind::Gin, 24);
        let golden = ReferenceExecutor::new().run(&g, &x, &m).unwrap();
        let fixed = run_fixed(&g, &x, &m, 0x4759).unwrap();
        let diff = golden.features.max_abs_diff(&fixed).unwrap();
        assert!(diff < 0.1, "max diff {diff}");
    }

    #[test]
    fn fixed_matches_float_for_graphsage() {
        let (g, x, m) = setup(ModelKind::GraphSage, 16);
        // Same sampling seed as the reference's default.
        let seed = ReferenceExecutor::new().sample_seed();
        let golden = ReferenceExecutor::new().run(&g, &x, &m).unwrap();
        let fixed = run_fixed(&g, &x, &m, seed).unwrap();
        let diff = golden.features.max_abs_diff(&fixed).unwrap();
        assert!(diff < 0.05, "max diff {diff}");
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (g, _, m) = setup(ModelKind::Gcn, 32);
        let bad = Matrix::zeros(64, 16);
        assert!(run_fixed(&g, &bad, &m, 0).is_err());
    }

    #[test]
    fn output_shape_is_vertices_by_outlen() {
        let (g, x, m) = setup(ModelKind::Gcn, 32);
        let fixed = run_fixed(&g, &x, &m, 0).unwrap();
        assert_eq!(fixed.shape(), (64, 128));
    }
}
