//! The [`SimBackend`] abstraction: one trait for every way of
//! evaluating a `(graph, model, config)` design point.
//!
//! The repo grew several evaluators — the cycle-accurate simulator, its
//! seed reference, the first-order analytical model, and the PyG-CPU /
//! PyG-GPU platform models in `hygcn-baseline` — but only the first was
//! reachable from the DSE campaign engine. `SimBackend` unifies them:
//! every backend consumes the same inputs and produces a comparable
//! [`SimReport`], and its [`SimBackend::backend_id`] participates in the
//! campaign cache key, so cached results from one backend are never
//! served for queries against another.
//!
//! ## Contract
//!
//! * `evaluate` is a **pure function** of `(graph, model, config)`:
//!   equal inputs produce bit-identical reports across processes and
//!   runs (the property the campaign store's resume semantics rest on).
//!   Backends must not keep mutable state across calls.
//! * `backend_id` is a **stable, lowercase token** (`"cycle"`, `"seed"`,
//!   `"analytical"`, `"cpu"`, `"gpu"`). It is hashed into every
//!   persisted cache key (the `"cycle"` id is elided for backward
//!   compatibility with stores written before the backend abstraction —
//!   see `hygcn_dse::space::cache_key`), so changing an id invalidates
//!   that backend's cached campaigns.
//! * Fields a backend does not model are **zeroed, never invented**, and
//!   [`SimReport::provenance`] carries the backend id for every backend
//!   other than the three golden cycle paths (whose serialized form
//!   predates the marker and is pinned by golden snapshots).
//!
//! ## Which backend to use
//!
//! | id           | models                                   | cost per point | use for |
//! |--------------|------------------------------------------|----------------|---------|
//! | `cycle`      | execution-driven, per-request HBM walk   | ms             | results |
//! | `cycle-fast` | same physics on a precompiled event schedule ([`crate::cycle_fast`]) | ms (≥5x faster warm) | repeated evaluations of one graph |
//! | `seed`       | the seed implementation (oracle)         | ms (slower)    | differential testing |
//! | `analytical` | O(chunks) roofline ([`crate::analytical`]) | µs           | campaign screening |
//! | `cpu`, `gpu` | PyG platform models (`hygcn-baseline`)   | µs             | speedup/energy baselines |

use hygcn_gcn::model::GcnModel;
use hygcn_graph::Graph;

use crate::config::HyGcnConfig;
use crate::error::SimError;
use crate::report::SimReport;
use crate::sim::Simulator;

/// One way of evaluating a design point. See the module docs for the
/// purity and id-stability contract.
pub trait SimBackend: Send + Sync + std::fmt::Debug {
    /// Stable identifier, hashed into the DSE campaign cache key.
    fn backend_id(&self) -> &'static str;

    /// Evaluates one layer of `model` over `graph` under `config`.
    ///
    /// # Errors
    ///
    /// [`SimError`] when the inputs are inconsistent (feature-length
    /// mismatch, a buffer too small for one feature vector).
    fn evaluate(
        &self,
        graph: &Graph,
        model: &GcnModel,
        config: &HyGcnConfig,
    ) -> Result<SimReport, SimError>;
}

/// The cycle-accurate, execution-driven simulator —
/// [`Simulator::simulate`] behind the trait. The default backend; its
/// reports carry no provenance marker (they *are* the golden form).
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleAccurateBackend;

impl SimBackend for CycleAccurateBackend {
    fn backend_id(&self) -> &'static str {
        "cycle"
    }

    fn evaluate(
        &self,
        graph: &Graph,
        model: &GcnModel,
        config: &HyGcnConfig,
    ) -> Result<SimReport, SimError> {
        hygcn_obs::observe_eval(self.backend_id(), || {
            Simulator::new(config.clone()).simulate(graph, model)
        })
    }
}

/// The seed implementation kept as a differential oracle —
/// [`Simulator::simulate_reference`] behind the trait. Bit-identical to
/// [`CycleAccurateBackend`] by the determinism/oracle suites, so it also
/// carries no provenance marker; cached separately (id `"seed"`) because
/// a *future* divergence must surface as a re-simulation, not a stale
/// cache hit.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeedReferenceBackend;

impl SimBackend for SeedReferenceBackend {
    fn backend_id(&self) -> &'static str {
        "seed"
    }

    fn evaluate(
        &self,
        graph: &Graph,
        model: &GcnModel,
        config: &HyGcnConfig,
    ) -> Result<SimReport, SimError> {
        hygcn_obs::observe_eval(self.backend_id(), || {
            Simulator::new(config.clone()).simulate_reference(graph, model)
        })
    }
}

/// Resolves a backend id to one of the backends *this crate* provides
/// (`cycle`, `cycle-fast`, `seed`, `analytical`). The platform backends
/// (`cpu`, `gpu`) live in `hygcn-baseline`;
/// `hygcn_baseline::backend::resolve` covers the full vocabulary.
pub fn core_backend(id: &str) -> Option<std::sync::Arc<dyn SimBackend>> {
    match id {
        "cycle" => Some(std::sync::Arc::new(CycleAccurateBackend)),
        "cycle-fast" => Some(std::sync::Arc::new(crate::cycle_fast::CycleFastBackend)),
        "seed" => Some(std::sync::Arc::new(SeedReferenceBackend)),
        "analytical" => Some(std::sync::Arc::new(crate::analytical::AnalyticalBackend)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygcn_gcn::model::ModelKind;
    use hygcn_graph::generator::preferential_attachment;

    fn workload() -> (Graph, GcnModel) {
        let g = preferential_attachment(512, 4, 1)
            .unwrap()
            .with_feature_len(64);
        let m = GcnModel::new(ModelKind::Gcn, 64, 7).unwrap();
        (g, m)
    }

    #[test]
    fn cycle_backend_matches_direct_simulate() {
        let (g, m) = workload();
        let cfg = HyGcnConfig::default();
        let via_backend = CycleAccurateBackend.evaluate(&g, &m, &cfg).unwrap();
        let direct = Simulator::new(cfg).simulate(&g, &m).unwrap();
        assert_eq!(via_backend, direct);
        assert_eq!(via_backend.provenance, "");
    }

    #[test]
    fn seed_backend_matches_cycle_backend() {
        let (g, m) = workload();
        let cfg = HyGcnConfig::default();
        let seed = SeedReferenceBackend.evaluate(&g, &m, &cfg).unwrap();
        let cycle = CycleAccurateBackend.evaluate(&g, &m, &cfg).unwrap();
        assert_eq!(seed, cycle, "oracle contract: bit-identical reports");
    }

    #[test]
    fn core_resolver_knows_its_backends() {
        for id in ["cycle", "cycle-fast", "seed", "analytical"] {
            let b = core_backend(id).unwrap_or_else(|| panic!("{id} must resolve"));
            assert_eq!(b.backend_id(), id);
        }
        assert!(core_backend("cpu").is_none());
        assert!(core_backend("bogus").is_none());
    }

    #[test]
    fn backend_errors_mirror_the_simulator() {
        let (g, _) = workload();
        let wrong = GcnModel::new(ModelKind::Gcn, 32, 7).unwrap();
        for backend in [
            &CycleAccurateBackend as &dyn SimBackend,
            &SeedReferenceBackend,
            &crate::cycle_fast::CycleFastBackend,
        ] {
            assert!(matches!(
                backend.evaluate(&g, &wrong, &HyGcnConfig::default()),
                Err(SimError::Gcn(_))
            ));
        }
    }
}
