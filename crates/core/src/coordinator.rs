//! Inter-engine coordination (paper §4.5).
//!
//! The Coordinator owns the ping-pong Aggregation Buffer
//! ([`hygcn_mem::buffer::PingPongBuffer`]) and the two-stage pipeline
//! schedule of Fig. 8: while the Combination Engine consumes chunk `c`,
//! the Aggregation Engine produces chunk `c+1`. This module holds the
//! pure scheduling arithmetic; the simulator folds memory time into the
//! per-stage durations before calling in.

/// Total cycles of a two-stage pipeline over `n` chunks: stage A (the
/// aggregation of chunk `s`) overlaps stage B (the combination of chunk
/// `s-1`). `a` and `b` are per-chunk durations *with memory folded in*.
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
pub fn pipelined_cycles(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "per-chunk stage arrays must align");
    let n = a.len();
    if n == 0 {
        return 0;
    }
    let mut total = 0u64;
    for s in 0..=n {
        let stage_a = if s < n { a[s] } else { 0 };
        let stage_b = if s > 0 { b[s - 1] } else { 0 };
        total += stage_a.max(stage_b);
    }
    total
}

/// Total cycles without the inter-engine pipeline: phases strictly
/// alternate per chunk.
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
pub fn serial_cycles(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "per-chunk stage arrays must align");
    a.iter().sum::<u64>() + b.iter().sum::<u64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_overlaps_balanced_stages() {
        let a = vec![10, 10, 10];
        let b = vec![10, 10, 10];
        // fill (10) + 3 overlapped steps... = 10*4 vs serial 60.
        assert_eq!(pipelined_cycles(&a, &b), 40);
        assert_eq!(serial_cycles(&a, &b), 60);
    }

    #[test]
    fn pipeline_bounded_by_slowest_stage() {
        let a = vec![100, 100];
        let b = vec![1, 1];
        assert_eq!(pipelined_cycles(&a, &b), 201);
    }

    #[test]
    fn single_chunk_cannot_overlap() {
        let a = vec![50];
        let b = vec![30];
        assert_eq!(pipelined_cycles(&a, &b), 80);
        assert_eq!(serial_cycles(&a, &b), 80);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(pipelined_cycles(&[], &[]), 0);
        assert_eq!(serial_cycles(&[], &[]), 0);
    }

    #[test]
    fn pipeline_never_slower_than_serial() {
        let a = vec![7, 23, 4, 19, 100];
        let b = vec![13, 2, 44, 8, 3];
        assert!(pipelined_cycles(&a, &b) <= serial_cycles(&a, &b));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let _ = pipelined_cycles(&[1], &[1, 2]);
    }
}
