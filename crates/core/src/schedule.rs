//! Precompiled per-design-point schedule for the `cycle-fast` backend.
//!
//! [`EventSchedule::build`] flattens everything about a
//! `(graph, config, feature_len)` triple the chunk loop would otherwise
//! rediscover per call: the destination chunking and, with sparsity
//! elimination on, every chunk's effectual windows. Windows come from
//! the graph's cached [`OccupancyIndex`] — per-interval source-occupancy
//! bitmaps built once per (graph, chunking) and shared across calls and
//! graph clones — so a warm evaluation pays only a popcount sweep per
//! chunk instead of the O(V+E) [`WindowPlanner`] planning sweep. When
//! the index would blow its memory budget, the schedule falls back to
//! the planner; either way the emitted window *spans* are exactly those
//! of Algorithm 4, which is all the engine consumes (edge counts are
//! derived from CSC offsets downstream).
//!
//! [`OccupancyIndex`]: hygcn_graph::window::OccupancyIndex
//! [`WindowPlanner`]: hygcn_graph::window::WindowPlanner

use hygcn_graph::partition::Interval;
use hygcn_graph::window::{EffectualWindow, WindowPlanner};
use hygcn_graph::Graph;

use crate::config::HyGcnConfig;

/// The flattened chunk schedule of one design point: the destination
/// intervals plus (with sparsity elimination) every chunk's effectual
/// windows in packed form.
#[derive(Debug, Clone)]
pub struct EventSchedule {
    intervals: Vec<Interval>,
    /// `windows[offsets[i]..offsets[i+1]]` are chunk `i`'s windows;
    /// `offsets` is all-zero (every slice empty) when sparsity
    /// elimination is off.
    offsets: Vec<usize>,
    windows: Vec<EffectualWindow>,
}

impl EventSchedule {
    /// Builds the schedule for one design point. `graph` must be the
    /// graph the chunk loop will run over (i.e. post-sampling).
    pub fn build(graph: &Graph, cfg: &HyGcnConfig, f_in: usize) -> Self {
        let _obs = hygcn_obs::span(hygcn_obs::Phase::ScheduleBuild);
        let n = graph.num_vertices() as u64;
        let chunk_w = cfg.chunk_width(f_in) as u32;
        let mut intervals = Vec::new();
        let mut start = 0u32;
        while u64::from(start) < n {
            let end = (start + chunk_w).min(n as u32);
            intervals.push(Interval::new(start, end));
            start = end;
        }

        let mut offsets = vec![0usize; intervals.len() + 1];
        let mut windows = Vec::new();
        if cfg.sparsity_elimination {
            let height = cfg.window_height(f_in);
            match graph.occupancy_index(&intervals) {
                Some(idx) => {
                    for i in 0..intervals.len() {
                        idx.for_each_window(i, height, |rows| {
                            windows.push(EffectualWindow {
                                rows,
                                edge_count: 0, // derived from CSC downstream
                            });
                        });
                        offsets[i + 1] = windows.len();
                    }
                }
                None => {
                    // Over the bitmap budget: one planner sweep instead.
                    let ws = WindowPlanner::new(height).plan_all(graph, &intervals);
                    for i in 0..intervals.len() {
                        windows.extend_from_slice(ws.windows(i));
                        offsets[i + 1] = windows.len();
                    }
                }
            }
        }
        Self {
            intervals,
            offsets,
            windows,
        }
    }

    /// The destination chunking, in ascending order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Chunk `i`'s effectual windows (empty when sparsity elimination is
    /// off — the engine ignores the plan entirely in that case).
    pub fn windows(&self, i: usize) -> &[EffectualWindow] {
        &self.windows[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Total windows across all chunks.
    pub fn total_windows(&self) -> usize {
        self.windows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygcn_graph::generator::{rmat, RmatParams};

    #[test]
    fn window_spans_match_planner_sweep() {
        let g = rmat(3000, 24_000, RmatParams::default(), 11)
            .unwrap()
            .with_feature_len(64);
        let cfg = HyGcnConfig {
            aggregation_buffer_bytes: 1 << 19, // force several chunks
            ..HyGcnConfig::default()
        };
        let sched = EventSchedule::build(&g, &cfg, 64);
        assert!(sched.intervals().len() > 1);
        let planner = WindowPlanner::new(cfg.window_height(64));
        let ws = planner.plan_all(&g, sched.intervals());
        assert_eq!(sched.total_windows(), ws.total_windows());
        for i in 0..sched.intervals().len() {
            let spans: Vec<_> = sched.windows(i).iter().map(|w| w.rows).collect();
            let golden: Vec<_> = ws.windows(i).iter().map(|w| w.rows).collect();
            assert_eq!(spans, golden, "chunk {i}");
        }
    }

    #[test]
    fn sparsity_off_yields_empty_window_lists() {
        let g = rmat(500, 3000, RmatParams::default(), 2)
            .unwrap()
            .with_feature_len(32);
        let cfg = HyGcnConfig {
            sparsity_elimination: false,
            ..HyGcnConfig::default()
        };
        let sched = EventSchedule::build(&g, &cfg, 32);
        assert_eq!(sched.total_windows(), 0);
        for i in 0..sched.intervals().len() {
            assert!(sched.windows(i).is_empty());
        }
    }

    #[test]
    fn empty_graph_has_no_intervals() {
        let coo = hygcn_graph::Coo::from_pairs(0, []).unwrap();
        let g = Graph::from_coo(&coo, 16);
        let sched = EventSchedule::build(&g, &HyGcnConfig::default(), 16);
        assert!(sched.intervals().is_empty());
        assert_eq!(sched.total_windows(), 0);
    }
}
