//! HyGCN configuration (paper Table 6 defaults).

use hygcn_graph::sampling::SamplePolicy;
use hygcn_mem::hbm::HbmConfig;
use hygcn_mem::scheduler::CoordinationMode;

/// How the Aggregation Engine's eSched distributes edge work over the
/// SIMD cores (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggregationMode {
    /// Feature elements of each vertex spread across *all* cores; cores
    /// never idle and vertex latency is minimal (HyGCN's choice).
    #[default]
    VertexDisperse,
    /// Each vertex pinned to a single SIMD core; fast vertices wait for
    /// slow ones (ablation baseline).
    VertexConcentrated,
}

/// Inter-engine pipeline mode (paper §4.5.1, Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineMode {
    /// Systolic modules independent; combination starts per small vertex
    /// group as soon as its aggregation lands (lowest vertex latency).
    #[default]
    LatencyAware,
    /// Systolic modules cooperate on large assembled groups; weights are
    /// reused aggressively (lowest energy).
    EnergyAware,
    /// Ablation: no inter-engine pipeline — aggregation results spill to
    /// DRAM and the Combination Engine reloads them phase-by-phase.
    None,
}

/// Full accelerator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HyGcnConfig {
    /// Clock frequency in GHz (1 GHz from synthesis, §5.1).
    pub clock_ghz: f64,
    /// Number of SIMD cores in the Aggregation Engine.
    pub simd_cores: usize,
    /// SIMD lanes per core.
    pub simd_width: usize,
    /// Number of systolic modules in the Combination Engine.
    pub systolic_modules: usize,
    /// PE rows per systolic module.
    pub module_rows: usize,
    /// PE columns per systolic module.
    pub module_cols: usize,
    /// Vertices a systolic module batches per independent-mode group.
    pub module_group_vertices: usize,
    /// Input Buffer capacity in bytes (double-buffered).
    pub input_buffer_bytes: usize,
    /// Edge Buffer capacity in bytes (double-buffered).
    pub edge_buffer_bytes: usize,
    /// Weight Buffer capacity in bytes (double-buffered).
    pub weight_buffer_bytes: usize,
    /// Output Buffer capacity in bytes (double-buffered).
    pub output_buffer_bytes: usize,
    /// Aggregation Buffer capacity in bytes (ping-pong halves).
    pub aggregation_buffer_bytes: usize,
    /// Off-chip memory model.
    pub hbm: HbmConfig,
    /// Off-chip access coordination mode.
    pub coordination: CoordinationMode,
    /// Inter-engine pipeline mode.
    pub pipeline: PipelineMode,
    /// Whether window sliding+shrinking sparsity elimination is enabled.
    pub sparsity_elimination: bool,
    /// SIMD work-distribution mode.
    pub aggregation_mode: AggregationMode,
    /// Seed for the runtime Sampler.
    pub sample_seed: u64,
    /// When set, overrides the model's sampling policy — used by the
    /// sampling-factor sweep of Fig. 18(a–c).
    pub sample_policy_override: Option<SamplePolicy>,
    /// Record a per-step [`crate::timeline::ChunkTrace`] in the report.
    pub record_timeline: bool,
    /// Evaluation fidelity in `(0, 1]`. `1.0` (the default) is a full-
    /// fidelity run. Successive-halving search rungs evaluate surviving
    /// design points with `fidelity < 1.0`: the campaign executor scales
    /// the workload down by this factor (a dataset at `scale * fidelity`)
    /// so early rungs are cheap. The simulator itself ignores the field;
    /// it exists so a low-fidelity evaluation carries a *distinct*
    /// canonical serialization — and therefore a distinct campaign cache
    /// key — letting every rung's results persist in (and resume from)
    /// the same `ResultStore` as full campaigns.
    pub fidelity: f64,
}

impl Default for HyGcnConfig {
    /// The Table 6 configuration: 1 GHz, 32 SIMD16 cores, 8 systolic
    /// modules of 4x128 PEs, 128 KB Input / 2 MB Edge / 2 MB Weight /
    /// 4 MB Output / 16 MB Aggregation buffers, HBM 1.0 at 256 GB/s,
    /// all optimizations on.
    fn default() -> Self {
        Self {
            clock_ghz: 1.0,
            simd_cores: 32,
            simd_width: 16,
            systolic_modules: 8,
            module_rows: 4,
            module_cols: 128,
            module_group_vertices: 16,
            input_buffer_bytes: 128 << 10,
            edge_buffer_bytes: 2 << 20,
            weight_buffer_bytes: 2 << 20,
            output_buffer_bytes: 4 << 20,
            aggregation_buffer_bytes: 16 << 20,
            hbm: HbmConfig::hbm1(),
            coordination: CoordinationMode::PriorityBatched,
            pipeline: PipelineMode::LatencyAware,
            sparsity_elimination: true,
            aggregation_mode: AggregationMode::VertexDisperse,
            sample_seed: 0x4759,
            sample_policy_override: None,
            record_timeline: false,
            fidelity: 1.0,
        }
    }
}

impl HyGcnConfig {
    /// Total SIMD lanes (`cores x width`).
    pub fn simd_lanes(&self) -> usize {
        self.simd_cores * self.simd_width
    }

    /// PEs per systolic module.
    pub fn module_pes(&self) -> usize {
        self.module_rows * self.module_cols
    }

    /// Total PEs in the Combination Engine.
    pub fn total_pes(&self) -> usize {
        self.systolic_modules * self.module_pes()
    }

    /// Source-feature rows that fit one working half of the Input Buffer —
    /// the window height for features of `feature_len`.
    pub fn window_height(&self, feature_len: usize) -> usize {
        ((self.input_buffer_bytes / 2) / (feature_len.max(1) * 4)).max(1)
    }

    /// Destination vertices whose `feature_len`-wide partial results fit
    /// one ping-pong half of the Aggregation Buffer — the chunk width.
    pub fn chunk_width(&self, feature_len: usize) -> usize {
        ((self.aggregation_buffer_bytes / 2) / (feature_len.max(1) * 4)).max(1)
    }

    /// Cycle count to seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9)
    }

    /// Canonical, stable, human-readable serialization of every field —
    /// `key=value` pairs joined with `;`, in declaration order, with
    /// nested [`HbmConfig`] fields flattened under `hbm.`.
    ///
    /// This string — and therefore [`Self::stable_hash`] — is a pure
    /// function of the configuration values: floats print in shortest
    /// round-trip (`{:?}`) form and enums in their `Debug` form, so equal
    /// configs serialize identically **across processes and runs**. The
    /// DSE campaign store persists hashes of this form as its cache key.
    /// Both structs are destructured exhaustively (no `..`), so adding a
    /// field without extending this listing is a compile error, not a
    /// silent cache-key collision.
    pub fn canon(&self) -> String {
        let HyGcnConfig {
            clock_ghz,
            simd_cores,
            simd_width,
            systolic_modules,
            module_rows,
            module_cols,
            module_group_vertices,
            input_buffer_bytes,
            edge_buffer_bytes,
            weight_buffer_bytes,
            output_buffer_bytes,
            aggregation_buffer_bytes,
            hbm,
            coordination,
            pipeline,
            sparsity_elimination,
            aggregation_mode,
            sample_seed,
            sample_policy_override,
            record_timeline,
            fidelity,
        } = self;
        let HbmConfig {
            channels,
            banks,
            row_bytes,
            burst_bytes,
            t_burst,
            t_row,
            t_cas,
            mapping,
            controller,
        } = hbm;
        format!(
            "clock_ghz={clock_ghz:?};simd_cores={simd_cores};simd_width={simd_width};\
             systolic_modules={systolic_modules};module_rows={module_rows};\
             module_cols={module_cols};module_group_vertices={module_group_vertices};\
             input_buffer_bytes={input_buffer_bytes};edge_buffer_bytes={edge_buffer_bytes};\
             weight_buffer_bytes={weight_buffer_bytes};output_buffer_bytes={output_buffer_bytes};\
             aggregation_buffer_bytes={aggregation_buffer_bytes};\
             hbm.channels={channels};hbm.banks={banks};hbm.row_bytes={row_bytes};\
             hbm.burst_bytes={burst_bytes};hbm.t_burst={t_burst};hbm.t_row={t_row};\
             hbm.t_cas={t_cas};hbm.mapping={mapping:?};hbm.controller={controller:?};\
             coordination={coordination:?};pipeline={pipeline:?};\
             sparsity_elimination={sparsity_elimination};aggregation_mode={aggregation_mode:?};\
             sample_seed={sample_seed};sample_policy_override={sample_policy_override:?};\
             record_timeline={record_timeline};fidelity={fidelity:?}"
        )
    }

    /// Validates the configuration's internal consistency — currently
    /// the HBM geometry ([`HbmConfig::validate`]) plus the fidelity
    /// range. Design-space enumeration calls this per point so that a
    /// campaign axis producing an impossible combination (for example
    /// `burst-bytes` larger than `row-bytes`) fails fast with a spec
    /// error instead of panicking mid-campaign.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.hbm.validate().map_err(|e| format!("hbm: {e}"))?;
        if !(self.clock_ghz.is_finite() && self.clock_ghz > 0.0) {
            return Err(format!(
                "clock_ghz {:?} must be a positive finite frequency",
                self.clock_ghz
            ));
        }
        if !(self.fidelity > 0.0 && self.fidelity <= 1.0) {
            return Err(format!("fidelity {:?} outside (0, 1]", self.fidelity));
        }
        Ok(())
    }

    /// A 64-bit FNV-1a hash of [`Self::canon`] — the configuration half
    /// of the DSE campaign cache key, stable across processes.
    pub fn stable_hash(&self) -> u64 {
        hygcn_graph::hashing::fnv1a_str(&self.canon())
    }

    /// The no-optimization ablation used as an internal baseline: FCFS
    /// memory handling, no sparsity elimination, no pipeline.
    pub fn ablated() -> Self {
        Self {
            hbm: HbmConfig::hbm1_uncoordinated(),
            coordination: CoordinationMode::Fcfs,
            pipeline: PipelineMode::None,
            sparsity_elimination: false,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_defaults() {
        let c = HyGcnConfig::default();
        assert_eq!(c.simd_lanes(), 512);
        assert_eq!(c.total_pes(), 4096);
        assert_eq!(c.aggregation_buffer_bytes, 16 << 20);
        assert_eq!(c.hbm.channels, 8);
    }

    #[test]
    fn window_height_scales_inversely_with_feature_len() {
        let c = HyGcnConfig::default();
        // 64 KB working half / (1433 * 4 B) = 11 rows for Cora.
        assert_eq!(c.window_height(1433), 11);
        assert!(c.window_height(136) > c.window_height(1433));
        assert_eq!(c.window_height(0), c.window_height(1));
    }

    #[test]
    fn chunk_width_uses_half_buffer() {
        let c = HyGcnConfig::default();
        assert_eq!(c.chunk_width(128), (8 << 20) / (128 * 4));
    }

    #[test]
    fn cycle_conversion_at_1ghz() {
        let c = HyGcnConfig::default();
        assert!((c.cycles_to_seconds(1_000_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ablated_turns_everything_off() {
        let a = HyGcnConfig::ablated();
        assert!(!a.sparsity_elimination);
        assert_eq!(a.pipeline, PipelineMode::None);
    }

    #[test]
    fn canon_covers_every_field() {
        // 20 scalar fields on HyGcnConfig plus 9 flattened HbmConfig
        // fields. Coverage itself is enforced at compile time by the
        // exhaustive destructuring inside `canon()`; this pins the
        // key=value;... shape the store hash is computed over.
        let canon = HyGcnConfig::default().canon();
        assert_eq!(canon.split(';').count(), 29, "{canon}");
        for pair in canon.split(';') {
            assert!(pair.contains('='), "malformed pair '{pair}'");
        }
    }

    #[test]
    fn stable_hash_is_deterministic_and_discriminating() {
        let base = HyGcnConfig::default();
        assert_eq!(base.stable_hash(), HyGcnConfig::default().stable_hash());
        let variants = [
            HyGcnConfig {
                aggregation_buffer_bytes: 8 << 20,
                ..base.clone()
            },
            HyGcnConfig {
                pipeline: PipelineMode::EnergyAware,
                ..base.clone()
            },
            HyGcnConfig {
                sparsity_elimination: false,
                ..base.clone()
            },
            HyGcnConfig {
                hbm: HbmConfig::hbm1_uncoordinated(),
                ..base.clone()
            },
            HyGcnConfig {
                sample_policy_override: Some(SamplePolicy::Factor(4)),
                ..base.clone()
            },
        ];
        for v in &variants {
            assert_ne!(base.stable_hash(), v.stable_hash(), "{}", v.canon());
        }
    }

    #[test]
    fn validate_rejects_bad_timing_knobs() {
        // The knobs the clock-ghz / t-row campaign axes set must also be
        // guarded at the config level, so a bad *base* config fails at
        // enumeration exactly like a bad axis value.
        for bad_clock in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let cfg = HyGcnConfig {
                clock_ghz: bad_clock,
                ..HyGcnConfig::default()
            };
            assert!(cfg.validate().unwrap_err().contains("clock"), "{bad_clock}");
        }
        let zero_t_row = HyGcnConfig {
            hbm: HbmConfig {
                t_row: 0,
                ..HbmConfig::hbm1()
            },
            ..HyGcnConfig::default()
        };
        assert!(zero_t_row.validate().unwrap_err().contains("t_row"));
    }

    #[test]
    fn validate_rejects_impossible_geometry_and_fidelity() {
        assert_eq!(HyGcnConfig::default().validate(), Ok(()));
        let burst_over_row = HyGcnConfig {
            hbm: HbmConfig {
                burst_bytes: 4096,
                ..HbmConfig::hbm1()
            },
            ..HyGcnConfig::default()
        };
        assert!(burst_over_row.validate().unwrap_err().contains("burst"));
        let non_pow2 = HyGcnConfig {
            hbm: HbmConfig {
                channels: 6,
                ..HbmConfig::hbm1()
            },
            ..HyGcnConfig::default()
        };
        assert!(non_pow2.validate().is_err());
        for bad in [0.0, -0.5, 1.5] {
            let cfg = HyGcnConfig {
                fidelity: bad,
                ..HyGcnConfig::default()
            };
            assert!(cfg.validate().unwrap_err().contains("fidelity"));
        }
    }

    #[test]
    fn fidelity_discriminates_the_hash() {
        let base = HyGcnConfig::default();
        let half = HyGcnConfig {
            fidelity: 0.5,
            ..base.clone()
        };
        assert_ne!(base.stable_hash(), half.stable_hash());
        assert!(half.canon().ends_with("fidelity=0.5"));
    }

    #[test]
    fn stable_hash_pins_cross_process_value() {
        // The literal value pins the canonical serialization across
        // processes and releases: a persisted campaign store must remain
        // readable by future builds. Update it ONLY on an intentional
        // cache-format break (which invalidates stored campaign results).
        // Last break: the `fidelity` field joined the key (successive-
        // halving rung evaluations need distinct cache identities).
        let canon = HyGcnConfig::default().canon();
        assert_eq!(
            HyGcnConfig::default().stable_hash(),
            0x8ffd_4b5d_b7f4_c6e6,
            "canonical serialization drifted: {canon}"
        );
        assert!(canon.starts_with("clock_ghz=1.0;simd_cores=32;"));
        assert!(canon.ends_with("fidelity=1.0"));
    }
}
