//! Training-cost extension (paper §6).
//!
//! The paper scopes HyGCN to inference but notes that "training
//! accelerators can leverage our architecture to design the forward
//! pass, and would need specialized blocks for other passes". This
//! module implements that projection: it costs one training iteration by
//! simulating the forward pass on the real HyGCN model and deriving the
//! backward and update passes from it with the standard dataflow
//! identities:
//!
//! * **backward** — the gradient flows through the *transposed* graph
//!   (same undirected adjacency, so the same aggregation volume) and the
//!   transposed weights (an MVM of the same MAC count), plus one extra
//!   MVM per vertex for the weight-gradient outer products
//!   (`∇W = Σ_v a_v · δ_vᵀ`, again the same MAC count);
//! * **update** — one read-modify-write pass over the shared parameters.
//!
//! The result is an *estimate* with clearly stated assumptions, not a
//! cycle-accurate backward pass — exactly the scoping of §6.

use hygcn_gcn::model::GcnModel;
use hygcn_graph::Graph;

use crate::error::SimError;
use crate::report::SimReport;
use crate::sim::Simulator;

/// Cost projection of one training iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingEstimate {
    /// The simulated forward pass.
    pub forward: SimReport,
    /// Estimated backward-pass cycles (input-gradient + weight-gradient).
    pub backward_cycles: u64,
    /// Estimated parameter-update cycles.
    pub update_cycles: u64,
}

impl TrainingEstimate {
    /// Total estimated cycles per training iteration.
    pub fn total_cycles(&self) -> u64 {
        self.forward.cycles + self.backward_cycles + self.update_cycles
    }

    /// Backward-to-forward cycle ratio (classically ~2x for dense nets).
    pub fn backward_ratio(&self) -> f64 {
        self.backward_cycles as f64 / self.forward.cycles.max(1) as f64
    }
}

impl Simulator {
    /// Projects the cost of one training iteration of `model` on `graph`.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the forward simulation.
    pub fn estimate_training_iteration(
        &self,
        graph: &Graph,
        model: &GcnModel,
    ) -> Result<TrainingEstimate, SimError> {
        let forward = self.simulate(graph, model)?;
        let cfg = self.config();

        // Input-gradient pass: transposed aggregation (same volume on an
        // undirected graph) + transposed-weight MVMs (same MACs).
        let agg_cycles = forward.elem_ops.div_ceil(cfg.simd_lanes() as u64);
        let mvm_cycles = forward.macs.div_ceil(cfg.total_pes() as u64);
        // Weight-gradient pass: one outer-product MVM of the same MAC
        // count, plus re-streaming the activations (memory bound like the
        // forward's feature traffic).
        let wgrad_cycles = forward.macs.div_ceil(cfg.total_pes() as u64);
        let mem_cycles = (forward.dram_bytes() as f64 / cfg.hbm.peak_bytes_per_cycle()) as u64;
        // Compute and memory overlap as in the forward engine pair.
        let backward_cycles = (agg_cycles + mvm_cycles + wgrad_cycles).max(mem_cycles);

        // Update: stream every parameter once through the datapath.
        let param_bytes = model.param_bytes() as u64;
        let update_cycles = (param_bytes / 4)
            .div_ceil(cfg.simd_lanes() as u64)
            .max((param_bytes as f64 / cfg.hbm.peak_bytes_per_cycle()) as u64);

        Ok(TrainingEstimate {
            forward,
            backward_cycles,
            update_cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HyGcnConfig;
    use hygcn_gcn::model::ModelKind;
    use hygcn_graph::generator::preferential_attachment;

    fn setup() -> (Graph, GcnModel) {
        let g = preferential_attachment(512, 3, 1)
            .unwrap()
            .with_feature_len(128);
        let m = GcnModel::new(ModelKind::Gcn, 128, 2).unwrap();
        (g, m)
    }

    #[test]
    fn training_costs_more_than_inference() {
        let (g, m) = setup();
        let sim = Simulator::new(HyGcnConfig::default());
        let t = sim.estimate_training_iteration(&g, &m).unwrap();
        assert!(t.total_cycles() > t.forward.cycles);
        assert!(t.backward_cycles > 0);
        assert!(t.update_cycles > 0);
    }

    #[test]
    fn backward_ratio_is_plausible() {
        let (g, m) = setup();
        let sim = Simulator::new(HyGcnConfig::default());
        let t = sim.estimate_training_iteration(&g, &m).unwrap();
        // Between 0.3x and 3x of the forward pass: the classic regime.
        let r = t.backward_ratio();
        assert!((0.3..=3.0).contains(&r), "backward ratio {r}");
    }

    #[test]
    fn update_is_cheap_relative_to_passes() {
        let (g, m) = setup();
        let sim = Simulator::new(HyGcnConfig::default());
        let t = sim.estimate_training_iteration(&g, &m).unwrap();
        assert!(t.update_cycles * 10 < t.forward.cycles + t.backward_cycles);
    }
}
