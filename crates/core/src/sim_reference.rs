//! The seed implementation of `simulate()`, kept as a reference.
//!
//! This is the simulator exactly as the repository's seed modeled it:
//! strictly serial, one gather-and-sort window-planning pass per chunk,
//! a freshly allocated request buffer per chunk, and an allocating
//! scheduler call per timeline step. It exists for two reasons:
//!
//! 1. **Oracle** — [`Simulator::simulate`]'s parallel, arena-based,
//!    occupancy-driven hot path must produce a bit-identical
//!    [`SimReport`]; the determinism tests and `hygcn bench` assert
//!    equality against this path.
//! 2. **Baseline** — `hygcn bench` reports the optimized pipeline's
//!    wall-clock speedup over this path, which is the honest "before"
//!    measurement for the host-performance work.
//!
//! Keep the cycle model here in lockstep with [`crate::sim`]; any change
//! to modeled behavior must land in both.

use hygcn_gcn::aggregate::SelfTerm;
use hygcn_gcn::model::{GcnModel, ModelKind, DIFFPOOL_CLUSTERS};
use hygcn_graph::partition::Interval;
use hygcn_graph::sampling::Sampler;
use hygcn_graph::Graph;
use hygcn_mem::request::{MemRequest, RequestArena, RequestKind};
use hygcn_mem::scheduler::AccessScheduler;
use hygcn_mem::Hbm;

use hygcn_mem::address::MappingScheme;
use hygcn_mem::hbm::{ControllerPolicy, HbmConfig};
use hygcn_mem::{ChannelStats, MemStats};

use crate::config::PipelineMode;
use crate::energy::{Activity, EnergyBreakdown};
use crate::engine::aggregation::AggregationEngine;
use crate::engine::combination::{CombinationEngine, SystolicMode};
use crate::error::SimError;
use crate::layout::AddressLayout;
use crate::report::SimReport;
use crate::sim::Simulator;
use crate::timeline::ChunkTrace;

/// The seed's HBM timing walk, verbatim: page-granular address decode
/// with division/modulo arithmetic and `Option`-boxed open rows. The
/// optimized [`Hbm`] replaces all of this with precomputed shifts; this
/// copy keeps the baseline's cost profile honest *and* double-checks the
/// optimized model, since both must yield identical cycle counts and
/// [`MemStats`]. In-order service only — a
/// [`ControllerPolicy::FrFcfs`] config falls back to the shared model.
struct SeedHbm {
    config: HbmConfig,
    channels: Vec<SeedChannel>,
    stats: MemStats,
}

struct SeedChannel {
    bus_free: u64,
    banks: Vec<SeedBank>,
    /// Per-channel counters, kept in lockstep with the optimized model's
    /// `ChannelTimeline` so the `SimReport::mem_channels` decomposition
    /// is part of the bit-identity contract.
    stats: ChannelStats,
}

#[derive(Clone, Default)]
struct SeedBank {
    open_row: Option<u64>,
    ready: u64,
}

impl SeedHbm {
    fn new(config: HbmConfig) -> Self {
        let channels = (0..config.channels)
            .map(|_| SeedChannel {
                bus_free: 0,
                banks: vec![SeedBank::default(); config.banks],
                stats: ChannelStats::default(),
            })
            .collect();
        Self {
            config,
            channels,
            stats: MemStats::default(),
        }
    }

    /// Page-granular decode exactly as the seed's `AddressMap` computed
    /// it (the page index takes the role of the burst index).
    fn decode(&self, addr: u64) -> (usize, usize, u64) {
        let c = self.config.channels as u64;
        let b = self.config.banks as u64;
        match self.config.mapping {
            MappingScheme::ChannelInterleaved => {
                let page = addr / self.config.row_bytes;
                let channel = (page % c) as usize;
                let rest = page / c;
                let bank = (rest % b) as usize;
                (channel, bank, rest / b)
            }
            MappingScheme::RowInterleaved => {
                const CHANNEL_SPAN: u64 = 128 << 20;
                let channel = ((addr / CHANNEL_SPAN) % c) as usize;
                let within = addr % CHANNEL_SPAN;
                let page = within / self.config.row_bytes;
                let bank = (page % b) as usize;
                (channel, bank, page / b)
            }
        }
    }

    fn service_segment(&mut self, addr: u64, bytes: u64, now: u64) -> u64 {
        let (channel, bank_idx, row) = self.decode(addr);
        let bursts = bytes.div_ceil(self.config.burst_bytes);
        let ch = &mut self.channels[channel];
        let bank = &mut ch.banks[bank_idx];
        let mut ready = bank.ready.max(now);
        if bank.open_row != Some(row) {
            ready += self.config.t_row;
            bank.open_row = Some(row);
            ch.stats.row_misses += 1;
        } else {
            ch.stats.row_hits += 1;
        }
        let start = ready.max(ch.bus_free);
        let finish = start + bursts * self.config.t_burst;
        ch.bus_free = finish;
        bank.ready = finish;
        ch.stats.bursts += bursts;
        ch.stats.busy_cycles += bursts * self.config.t_burst;
        let done = finish + self.config.t_cas;
        ch.stats.last_completion = ch.stats.last_completion.max(done);
        done
    }

    fn access(&mut self, req: &MemRequest, now: u64) -> u64 {
        let mut addr = req.addr;
        let end = req.addr + u64::from(req.bytes);
        let mut completion = now;
        while addr < end {
            let row_end = (addr / self.config.row_bytes + 1) * self.config.row_bytes;
            let seg_end = row_end.min(end);
            let done = self.service_segment(addr, seg_end - addr, now);
            completion = completion.max(done);
            addr = seg_end;
        }
        self.stats.requests += 1;
        if req.is_write {
            self.stats.bytes_written += u64::from(req.bytes);
        } else {
            self.stats.bytes_read += u64::from(req.bytes);
        }
        completion
    }

    fn service_batch(&mut self, reqs: &[MemRequest], now: u64) -> u64 {
        let mut completion = now;
        for r in reqs {
            completion = completion.max(self.access(r, now));
        }
        completion
    }

    /// Request totals with the per-channel counters folded in, exactly
    /// as the optimized model folds them.
    fn stats(&self) -> MemStats {
        let mut s = self.stats;
        for ch in &self.channels {
            ch.stats.fold_into(&mut s);
        }
        s
    }

    fn channel_stats(&self) -> Vec<ChannelStats> {
        self.channels.iter().map(|c| c.stats).collect()
    }
}

/// The reference path's memory model: the seed walk for in-order
/// service, the shared model otherwise.
enum SeedMemory {
    Seed(SeedHbm),
    Shared(Hbm),
}

impl SeedMemory {
    fn new(config: HbmConfig) -> Self {
        match config.controller {
            ControllerPolicy::InOrder => SeedMemory::Seed(SeedHbm::new(config)),
            ControllerPolicy::FrFcfs { .. } => SeedMemory::Shared(Hbm::new(config)),
        }
    }

    fn service_batch(&mut self, reqs: &[MemRequest], now: u64) -> u64 {
        match self {
            SeedMemory::Seed(h) => h.service_batch(reqs, now),
            SeedMemory::Shared(h) => h.service_batch(reqs, now),
        }
    }

    fn stats(&self) -> MemStats {
        match self {
            SeedMemory::Seed(h) => h.stats(),
            SeedMemory::Shared(h) => h.stats(),
        }
    }

    fn channel_stats(&self) -> Vec<ChannelStats> {
        match self {
            SeedMemory::Seed(h) => h.channel_stats(),
            SeedMemory::Shared(h) => h.channel_stats(),
        }
    }
}

/// Per-chunk records with their own request buffers, as the seed kept
/// them.
struct SeedChunk {
    agg: crate::engine::aggregation::ChunkAggregation,
    comb: crate::engine::combination::ChunkCombination,
    agg_requests: Vec<MemRequest>,
    comb_requests: Vec<MemRequest>,
}

impl Simulator {
    /// Serial seed-path simulation; see the module docs.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`Simulator::simulate`].
    pub fn simulate_reference(
        &self,
        graph: &Graph,
        model: &GcnModel,
    ) -> Result<SimReport, SimError> {
        let cfg = self.config();
        crate::validate::validate_inputs(graph, model, cfg)?;
        let f_in = model.feature_len();
        let row_bytes = f_in * 4;

        let kind = model.kind();
        let policy = cfg.sample_policy_override.unwrap_or(kind.sample_policy());
        let sampled_storage;
        let (g, presample_edges) = if policy.is_sampling() {
            sampled_storage = Sampler::new(cfg.sample_seed).sample(graph, policy);
            (&sampled_storage, graph.num_edges() as u64)
        } else {
            (graph, 0)
        };

        let n = g.num_vertices() as u64;
        let dims = kind.mlp_dims(f_in);
        let layout = AddressLayout::new(n, g.num_edges() as u64, row_bytes as u64, &dims);
        let agg_engine = AggregationEngine::new(cfg, f_in, layout.feature_base, layout.edge_base);
        let comb_engine =
            CombinationEngine::new(cfg, &dims, layout.weight_base, layout.output_base);
        let spill_base = layout.spill_base;

        let include_self = !matches!(kind.self_term(), SelfTerm::None);
        let paths: u64 = if kind == ModelKind::DiffPool { 2 } else { 1 };
        let chunk_w = cfg.chunk_width(f_in) as u32;
        let mut intervals = Vec::new();
        let mut start = 0u32;
        while u64::from(start) < n {
            let end = (start + chunk_w).min(n as u32);
            intervals.push(Interval::new(start, end));
            start = end;
        }
        let num_chunks = intervals.len().max(1) as u64;
        let presample_per_chunk = presample_edges / num_chunks;

        let mode = match cfg.pipeline {
            PipelineMode::LatencyAware => SystolicMode::Independent,
            PipelineMode::EnergyAware | PipelineMode::None => SystolicMode::Cooperative,
        };
        let weights_resident = comb_engine.weights_resident();
        let clusters = DIFFPOOL_CLUSTERS as u64;

        // --- Per-chunk engine records, strictly serial, with fresh
        // buffers per chunk (the seed's allocation pattern). ---
        let mut chunks: Vec<SeedChunk> = Vec::with_capacity(intervals.len());
        for (i, &dst) in intervals.iter().enumerate() {
            let mut arena = RequestArena::new();
            let mut scratch = Vec::new();
            let a = agg_engine.process_chunk(
                g,
                dst,
                f_in,
                include_self,
                presample_per_chunk,
                paths,
                &mut arena,
                &mut scratch,
            );
            let extra_macs = if kind == ModelKind::DiffPool {
                dst.len() as u64 * f_in as u64 * clusters
                    + dst.len() as u64 * clusters * comb_engine.out_len()
                    + a.edges * clusters * clusters / 64
            } else {
                0
            };
            let c = comb_engine.process_chunk(
                dst.len() as u64,
                mode,
                i == 0 || !weights_resident,
                extra_macs,
                i as u64,
                &mut arena,
            );
            chunks.push(SeedChunk {
                agg_requests: arena.slice(a.span).to_vec(),
                comb_requests: arena.slice(c.span).to_vec(),
                agg: a,
                comb: c,
            });
        }

        // --- Activity accounting (energy). ---
        let mut act = Activity::default();
        for ch in &chunks {
            act.simd_ops += ch.agg.elem_ops;
            act.agg_buffer_traffic += ch.agg.edge_buffer_bytes + ch.agg.input_buffer_bytes;
            act.coordinator_buffer_traffic += ch.agg.agg_buffer_bytes;
            for r in &ch.agg_requests {
                act.agg_hbm_bytes += u64::from(r.bytes);
            }
            act.macs += ch.comb.macs;
            act.comb_buffer_traffic += ch.comb.weight_buffer_bytes + ch.comb.output_buffer_bytes;
            act.coordinator_buffer_traffic += ch.comb.agg_buffer_bytes;
            for r in &ch.comb_requests {
                act.comb_hbm_bytes += u64::from(r.bytes);
            }
        }

        // --- Timeline through the seed memory handler. ---
        let scheduler = AccessScheduler::new(cfg.coordination);
        let mut hbm = SeedMemory::new(cfg.hbm);
        let mut now = 0u64;
        let mut vertex_latency_weighted = 0f64;
        let nchunks = intervals.len();
        let mut timeline: Vec<ChunkTrace> = Vec::new();

        match cfg.pipeline {
            PipelineMode::None => {
                for (i, dst) in intervals.iter().enumerate() {
                    let spill_bytes = (dst.len() * row_bytes) as u64 * paths;
                    let spill_addr = spill_base + u64::from(dst.start) * row_bytes as u64;

                    let mut batch_a = chunks[i].agg_requests.clone();
                    batch_a.push(MemRequest::write(
                        RequestKind::OutputFeatures,
                        spill_addr,
                        spill_bytes as u32,
                    ));
                    let mem_a = hbm.service_batch(&scheduler.order(batch_a), now);
                    let step_a = chunks[i].agg.compute_cycles.max(mem_a.saturating_sub(now));
                    if cfg.record_timeline {
                        timeline.push(ChunkTrace {
                            step: 2 * i,
                            agg_cycles: chunks[i].agg.compute_cycles,
                            comb_cycles: 0,
                            mem_cycles: mem_a.saturating_sub(now),
                            step_cycles: step_a,
                        });
                    }
                    now += step_a;

                    let mut batch_b = chunks[i].comb_requests.clone();
                    batch_b.push(MemRequest::read(
                        RequestKind::InputFeatures,
                        spill_addr,
                        spill_bytes as u32,
                    ));
                    let mem_b = hbm.service_batch(&scheduler.order(batch_b), now);
                    let step_b = chunks[i].comb.compute_cycles.max(mem_b.saturating_sub(now));
                    if cfg.record_timeline {
                        timeline.push(ChunkTrace {
                            step: 2 * i + 1,
                            agg_cycles: 0,
                            comb_cycles: chunks[i].comb.compute_cycles,
                            mem_cycles: mem_b.saturating_sub(now),
                            step_cycles: step_b,
                        });
                    }
                    now += step_b;

                    act.spill_hbm_bytes += 2 * spill_bytes;
                    vertex_latency_weighted += (step_a + step_b) as f64 * dst.len() as f64;
                }
            }
            PipelineMode::LatencyAware | PipelineMode::EnergyAware => {
                let same_chunk = cfg.pipeline == PipelineMode::LatencyAware;
                let steps = if same_chunk { nchunks } else { nchunks + 1 };
                let mut agg_step_time = vec![0u64; nchunks];
                for s in 0..steps {
                    let comb_idx = if same_chunk {
                        Some(s)
                    } else {
                        s.checked_sub(1)
                    };
                    let mut batch: Vec<MemRequest> = Vec::new();
                    if s < nchunks {
                        batch.extend_from_slice(&chunks[s].agg_requests);
                    }
                    if let Some(c) = comb_idx {
                        batch.extend_from_slice(&chunks[c].comb_requests);
                    }
                    let mem_done = if batch.is_empty() {
                        now
                    } else {
                        hbm.service_batch(&scheduler.order(batch), now)
                    };
                    let compute_a = if s < nchunks {
                        chunks[s].agg.compute_cycles
                    } else {
                        0
                    };
                    let compute_b = comb_idx.map_or(0, |c| chunks[c].comb.compute_cycles);
                    let step = compute_a.max(compute_b).max(mem_done.saturating_sub(now));
                    if s < nchunks {
                        agg_step_time[s] = step;
                    }
                    if cfg.record_timeline {
                        timeline.push(ChunkTrace {
                            step: s,
                            agg_cycles: compute_a,
                            comb_cycles: compute_b,
                            mem_cycles: mem_done.saturating_sub(now),
                            step_cycles: step,
                        });
                    }
                    now += step;
                }
                for (i, dst) in intervals.iter().enumerate() {
                    let latency = match mode {
                        SystolicMode::Independent => {
                            let assembly = cfg.module_group_vertices as u64 * agg_step_time[i]
                                / dst.len().max(1) as u64;
                            agg_step_time[i] * 3 / 4 + assembly + chunks[i].comb.first_group_cycles
                        }
                        SystolicMode::Cooperative => {
                            agg_step_time[i] + chunks[i].comb.compute_cycles
                        }
                    };
                    vertex_latency_weighted += latency as f64 * dst.len() as f64;
                }
            }
        }

        // --- Report. ---
        let total_rows_loaded: u64 = chunks.iter().map(|c| c.agg.feature_rows_loaded).sum();
        let baseline_rows = n * nchunks as u64;
        let sparsity_reduction = if baseline_rows > 0 {
            1.0 - total_rows_loaded as f64 / baseline_rows as f64
        } else {
            0.0
        };
        let stats = hbm.stats();
        let cycles = now.max(1);
        let time_s = cfg.cycles_to_seconds(cycles);
        Ok(SimReport {
            cycles,
            time_s,
            agg_compute_cycles: chunks.iter().map(|c| c.agg.compute_cycles).sum(),
            comb_compute_cycles: chunks.iter().map(|c| c.comb.compute_cycles).sum(),
            mem: stats,
            mem_channels: hbm.channel_stats(),
            bandwidth_utilization: stats
                .bandwidth_utilization(cycles, cfg.hbm.peak_bytes_per_cycle()),
            energy: EnergyBreakdown::from_activity(&act).with_static(time_s),
            avg_vertex_latency_cycles: vertex_latency_weighted / n.max(1) as f64,
            sparsity_reduction: sparsity_reduction.max(0.0),
            chunks: nchunks,
            elem_ops: act.simd_ops,
            macs: act.macs,
            timeline,
            provenance: "",
        })
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::config::HyGcnConfig;
    use hygcn_graph::generator::{rmat, RmatParams};

    #[test]
    fn reference_matches_optimized_for_every_pipeline_mode() {
        let g = rmat(2048, 24_000, RmatParams::default(), 11)
            .unwrap()
            .with_feature_len(96);
        for kind in [ModelKind::Gcn, ModelKind::GraphSage, ModelKind::DiffPool] {
            let m = GcnModel::new(kind, 96, 1).unwrap();
            for pipeline in [
                PipelineMode::LatencyAware,
                PipelineMode::EnergyAware,
                PipelineMode::None,
            ] {
                let mut cfg = HyGcnConfig::default();
                cfg.pipeline = pipeline;
                cfg.aggregation_buffer_bytes = 1 << 20;
                let sim = Simulator::new(cfg);
                let fast = sim.simulate(&g, &m).unwrap();
                let seed = sim.simulate_reference(&g, &m).unwrap();
                assert_eq!(fast, seed, "{kind:?} {pipeline:?}");
            }
        }
    }

    #[test]
    fn reference_matches_without_sparsity_elimination() {
        let g = rmat(1024, 8_000, RmatParams::default(), 5)
            .unwrap()
            .with_feature_len(64);
        let m = GcnModel::new(ModelKind::Gcn, 64, 1).unwrap();
        let mut cfg = HyGcnConfig::default();
        cfg.sparsity_elimination = false;
        cfg.aggregation_buffer_bytes = 1 << 20;
        let sim = Simulator::new(cfg);
        assert_eq!(
            sim.simulate(&g, &m).unwrap(),
            sim.simulate_reference(&g, &m).unwrap()
        );
    }
}
