//! Physical DRAM layout of a simulated workload.
//!
//! All regions are page-aligned (4 KB): the input feature matrix, the
//! edge array, the shared MLP parameters, the output feature matrix, and
//! the spill region the no-pipeline ablation uses for aggregation
//! results. Splitting this out of engine construction lets the simulator
//! build each engine exactly once — previously the Combination Engine
//! was built twice because its own `weight_bytes()` was needed to place
//! the output region it had to be constructed with.

/// Page-aligned base addresses of every DRAM-resident data structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressLayout {
    /// Input feature matrix `X^{k-1}`.
    pub feature_base: u64,
    /// Edge (CSC column) array.
    pub edge_base: u64,
    /// Shared MLP weights and biases.
    pub weight_base: u64,
    /// Output feature matrix `X^k`.
    pub output_base: u64,
    /// Aggregation spill region (no-pipeline ablation only).
    pub spill_base: u64,
}

/// Shared-parameter bytes of an MLP dimension chain (weights + biases at
/// 4 B/element) — e.g. `[1433, 128]` → `(1433*128 + 128) * 4`.
pub fn mlp_weight_bytes(dims: &[usize]) -> u64 {
    dims.windows(2)
        .map(|w| (w[0] as u64 * w[1] as u64 + w[1] as u64) * 4)
        .sum()
}

/// Output feature length of an MLP dimension chain (0 for a degenerate
/// chain with fewer than two dims).
pub fn mlp_out_len(dims: &[usize]) -> u64 {
    if dims.len() < 2 {
        0
    } else {
        dims.last().copied().unwrap_or(0) as u64
    }
}

impl AddressLayout {
    /// Lays out a workload: `num_vertices` feature rows of `row_bytes`,
    /// `num_edges` 4-byte edge entries, and the MLP of `dims`.
    pub fn new(num_vertices: u64, num_edges: u64, row_bytes: u64, dims: &[usize]) -> Self {
        let align = |x: u64| x.div_ceil(4096) * 4096;
        let feature_base = 0u64;
        let edge_base = align(feature_base + num_vertices * row_bytes);
        let weight_base = align(edge_base + num_edges * 4);
        let output_base = align(weight_base + mlp_weight_bytes(dims));
        let spill_base = align(output_base + num_vertices * mlp_out_len(dims) * 4);
        Self {
            feature_base,
            edge_base,
            weight_base,
            output_base,
            spill_base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_page_aligned_and_ordered() {
        let l = AddressLayout::new(1000, 8000, 512, &[128, 128]);
        for base in [l.edge_base, l.weight_base, l.output_base, l.spill_base] {
            assert_eq!(base % 4096, 0);
        }
        assert!(l.feature_base < l.edge_base);
        assert!(l.edge_base < l.weight_base);
        assert!(l.weight_base < l.output_base);
        assert!(l.output_base < l.spill_base);
    }

    #[test]
    fn regions_do_not_overlap() {
        let (n, e, rb) = (12345u64, 99999u64, 256u64);
        let dims = [64usize, 128, 128];
        let l = AddressLayout::new(n, e, rb, &dims);
        assert!(l.feature_base + n * rb <= l.edge_base);
        assert!(l.edge_base + e * 4 <= l.weight_base);
        assert!(l.weight_base + mlp_weight_bytes(&dims) <= l.output_base);
        assert!(l.output_base + n * mlp_out_len(&dims) * 4 <= l.spill_base);
    }

    #[test]
    fn weight_bytes_matches_mlp_accounting() {
        assert_eq!(mlp_weight_bytes(&[256, 128]), (256 * 128 + 128) * 4);
        assert_eq!(
            mlp_weight_bytes(&[602, 128, 128]),
            ((602 * 128 + 128) + (128 * 128 + 128)) * 4
        );
        assert_eq!(mlp_weight_bytes(&[64]), 0);
    }

    #[test]
    fn out_len_is_last_dim() {
        assert_eq!(mlp_out_len(&[256, 128]), 128);
        assert_eq!(mlp_out_len(&[602, 128, 64]), 64);
        assert_eq!(mlp_out_len(&[42]), 0);
        assert_eq!(mlp_out_len(&[]), 0);
    }
}
