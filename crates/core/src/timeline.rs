//! Per-chunk execution timeline — the simulator's observability surface —
//! and the per-channel HBM walk driver.
//!
//! When [`crate::config::HyGcnConfig::record_timeline`] is set, the
//! simulator records one [`ChunkTrace`] per pipeline step: the two
//! engines' compute demands, the memory system's service time, and which
//! of the three bound the step. [`render`] prints a compact textual
//! Gantt view for debugging workload balance — the tool one reaches for
//! when a configuration underperforms.
//!
//! [`ChannelWalk`] drives the memory system's timing walk: each service
//! batch is staged channel-major inside the [`Hbm`] model, the
//! per-channel state machines drain their queues — concurrently via
//! [`hygcn_par`] when the batch is fat enough — and the deterministic
//! min-cycle merge (the earliest cycle at which *every* channel is done,
//! i.e. the max of the per-channel completions, floored at the arrival
//! cycle) yields the batch completion. Channel machines never share
//! state and the statistics fold by summation, so the walk is
//! bit-identical to a serial drain at any thread count.

use hygcn_mem::hbm::ChannelTimeline;
use hygcn_mem::{ChannelStats, Hbm, HbmConfig, MemRequest, MemStats};

/// Minimum staged segments before the walk fans the channels out to
/// threads: below this the per-batch spawn overhead of the scoped
/// workers dwarfs the service loop itself.
const PAR_SEGMENT_THRESHOLD: usize = 4096;

/// The per-channel HBM walk driver (see the module docs).
#[derive(Debug, Clone)]
pub struct ChannelWalk {
    hbm: Hbm,
}

impl ChannelWalk {
    /// An idle walk over a fresh HBM stack.
    pub fn new(config: HbmConfig) -> Self {
        Self {
            hbm: Hbm::new(config),
        }
    }

    /// Services one batch arriving at `now`; returns the deterministic
    /// min-cycle merge of the per-channel completions.
    pub fn service_batch(&mut self, reqs: &[MemRequest], now: u64) -> u64 {
        let _obs = hygcn_obs::span(hygcn_obs::Phase::HbmWalk);
        self.hbm.stage_batch(reqs);
        let policy = self.hbm.config().controller;
        let (partition, channels) = self.hbm.staged();
        // Check the cheap size gate first: num_threads() consults the
        // environment, which would cost more than draining a small batch.
        let fan_out = partition.total_segments() >= PAR_SEGMENT_THRESHOLD
            && channels.len() > 1
            && hygcn_par::num_threads() > 1;
        if !fan_out {
            // The serial walk lives in one place: the Hbm model itself.
            return self.hbm.drain_staged(now);
        }
        hygcn_par::par_items_mut(channels, |c, ch: &mut ChannelTimeline| {
            ch.drain_policy(partition.channel(c), now, policy);
        });
        self.hbm.merge_batch(now)
    }

    /// Folded request- and channel-level statistics.
    pub fn stats(&self) -> MemStats {
        self.hbm.stats()
    }

    /// Per-channel statistics, in channel order.
    pub fn channel_stats(&self) -> Vec<ChannelStats> {
        self.hbm.channel_stats()
    }
}

/// What bounded a pipeline step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Aggregation Engine compute.
    Aggregation,
    /// Combination Engine compute.
    Combination,
    /// Off-chip memory service.
    Memory,
}

impl Bound {
    /// One-letter tag for the rendering.
    pub fn tag(&self) -> char {
        match self {
            Bound::Aggregation => 'A',
            Bound::Combination => 'C',
            Bound::Memory => 'M',
        }
    }
}

/// One pipeline step's accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkTrace {
    /// Step index.
    pub step: usize,
    /// Aggregation compute demand in cycles (0 if no chunk aggregated).
    pub agg_cycles: u64,
    /// Combination compute demand in cycles (0 if no chunk combined).
    pub comb_cycles: u64,
    /// Memory service time in cycles.
    pub mem_cycles: u64,
    /// The realized step duration (the max of the three).
    pub step_cycles: u64,
}

impl ChunkTrace {
    /// Which resource bound this step.
    pub fn bound(&self) -> Bound {
        if self.mem_cycles >= self.agg_cycles && self.mem_cycles >= self.comb_cycles {
            Bound::Memory
        } else if self.agg_cycles >= self.comb_cycles {
            Bound::Aggregation
        } else {
            Bound::Combination
        }
    }

    /// Fraction of the step the named engine was busy.
    pub fn utilization(&self, of: Bound) -> f64 {
        if self.step_cycles == 0 {
            return 0.0;
        }
        let busy = match of {
            Bound::Aggregation => self.agg_cycles,
            Bound::Combination => self.comb_cycles,
            Bound::Memory => self.mem_cycles,
        };
        busy as f64 / self.step_cycles as f64
    }
}

/// Renders a timeline as fixed-width text: one row per step with
/// proportional bars for each resource.
pub fn render(traces: &[ChunkTrace]) -> String {
    const WIDTH: usize = 32;
    let max = traces
        .iter()
        .map(|t| t.step_cycles)
        .max()
        .unwrap_or(1)
        .max(1);
    let mut out = String::from("step     cycles  bound  A=aggregation C=combination M=memory\n");
    for t in traces {
        let bar_len = (t.step_cycles as usize * WIDTH / max as usize).max(1);
        let bar: String = std::iter::repeat_n(t.bound().tag(), bar_len).collect();
        out += &format!(
            "{:>4} {:>10}      {}  {}\n",
            t.step,
            t.step_cycles,
            t.bound().tag(),
            bar
        );
    }
    out
}

/// Aggregate busy fractions over a whole timeline
/// `(aggregation, combination, memory)`.
pub fn busy_fractions(traces: &[ChunkTrace]) -> (f64, f64, f64) {
    let total: u64 = traces.iter().map(|t| t.step_cycles).sum();
    if total == 0 {
        return (0.0, 0.0, 0.0);
    }
    let sum = |f: fn(&ChunkTrace) -> u64| {
        traces.iter().map(|t| f(t).min(t.step_cycles)).sum::<u64>() as f64 / total as f64
    };
    (
        sum(|t| t.agg_cycles),
        sum(|t| t.comb_cycles),
        sum(|t| t.mem_cycles),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(step: usize, a: u64, c: u64, m: u64) -> ChunkTrace {
        ChunkTrace {
            step,
            agg_cycles: a,
            comb_cycles: c,
            mem_cycles: m,
            step_cycles: a.max(c).max(m),
        }
    }

    #[test]
    fn bound_detection() {
        assert_eq!(t(0, 10, 5, 3).bound(), Bound::Aggregation);
        assert_eq!(t(0, 5, 10, 3).bound(), Bound::Combination);
        assert_eq!(t(0, 5, 10, 30).bound(), Bound::Memory);
    }

    #[test]
    fn utilization_fractions() {
        let tr = t(0, 50, 25, 100);
        assert_eq!(tr.utilization(Bound::Memory), 1.0);
        assert_eq!(tr.utilization(Bound::Aggregation), 0.5);
        assert_eq!(tr.utilization(Bound::Combination), 0.25);
    }

    #[test]
    fn render_shows_each_step() {
        let out = render(&[t(0, 10, 5, 3), t(1, 2, 20, 8)]);
        assert!(out.contains("A"));
        assert!(out.contains("C"));
        assert_eq!(out.lines().count(), 3);
    }

    #[test]
    fn channel_walk_matches_serial_hbm() {
        use hygcn_mem::{HbmConfig, MemRequest, RequestKind};
        // 2048 requests × 3 row segments = 6144 staged segments: one
        // batch above PAR_SEGMENT_THRESHOLD (so the fan-out branch runs
        // whenever the host has threads), plus small batches below it.
        let reqs: Vec<MemRequest> = (0..2048u64)
            .map(|i| MemRequest::read(RequestKind::InputFeatures, i * 37 * 2048, 6000))
            .collect();
        let mut walk = ChannelWalk::new(HbmConfig::hbm1());
        let mut serial = Hbm::new(HbmConfig::hbm1());
        let fat = walk.service_batch(&reqs, 123);
        assert_eq!(fat, serial.service_batch(&reqs, 123));
        let mut now = fat;
        for chunk in reqs.chunks(64) {
            let a = walk.service_batch(chunk, now);
            let b = serial.service_batch(chunk, now);
            assert_eq!(a, b);
            now = a;
        }
        assert_eq!(walk.stats(), serial.stats());
        assert_eq!(walk.channel_stats(), serial.channel_stats());
        assert!(walk.stats().row_hits + walk.stats().row_misses > 0);
    }

    #[test]
    fn busy_fractions_bounded() {
        let (a, c, m) = busy_fractions(&[t(0, 10, 5, 3), t(1, 2, 20, 8), t(2, 7, 7, 7)]);
        for v in [a, c, m] {
            assert!((0.0..=1.0).contains(&v));
        }
        assert_eq!(busy_fractions(&[]), (0.0, 0.0, 0.0));
    }
}
