//! The Combination Engine (paper §4.4).
//!
//! Multi-granular systolic arrays execute the shared-MLP MVMs. Two
//! working modes (Fig. 7):
//!
//! * **Independent** — each systolic module processes a small vertex
//!   group as soon as its aggregation result is ready. Lowest vertex
//!   latency, but each module streams the weights through its own array
//!   per group (more Weight Buffer traffic).
//! * **Cooperative** — the modules assemble into one large array over a
//!   big vertex group; weights flow from the Weight Buffer through all
//!   modules once (Fig. 6(b)), minimizing energy at the cost of waiting
//!   to assemble the group.

use hygcn_mem::request::{MemRequest, RequestArena, RequestKind, RequestSpan, RequestSummary};

use crate::config::HyGcnConfig;

/// Systolic working mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystolicMode {
    /// Independent modules on small groups (latency-aware pipeline).
    Independent,
    /// Assembled modules on large groups (energy-aware pipeline).
    Cooperative,
}

/// Cost record for combining one chunk of vertices.
///
/// Like [`crate::engine::aggregation::ChunkAggregation`], the chunk's
/// DRAM requests live in the shared [`RequestArena`]; the record carries
/// a [`RequestSpan`] plus a [`RequestSummary`] histogram.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChunkCombination {
    /// Systolic compute cycles (MAC throughput + pipeline fills).
    pub compute_cycles: u64,
    /// Multiply-accumulates executed.
    pub macs: u64,
    /// Weight Buffer eDRAM read traffic in bytes.
    pub weight_buffer_bytes: u64,
    /// Output Buffer eDRAM traffic in bytes.
    pub output_buffer_bytes: u64,
    /// Aggregation Buffer read traffic in bytes.
    pub agg_buffer_bytes: u64,
    /// Per-kind histogram of the chunk's DRAM requests.
    pub summary: RequestSummary,
    /// Where the chunk's requests (weight fills and output write-backs)
    /// sit in the shared [`RequestArena`].
    pub span: RequestSpan,
    /// Cycles until the *first* vertex group completes (vertex-latency
    /// contribution of this chunk under the latency-aware pipeline).
    pub first_group_cycles: u64,
}

impl ChunkCombination {
    /// Shifts the record's span by `offset` arena entries — used when a
    /// worker-local arena is spliced into the shared one.
    pub fn rebased(mut self, offset: u32) -> Self {
        self.span = self.span.rebased(offset);
        self
    }
}

/// The Combination Engine model.
#[derive(Debug, Clone)]
pub struct CombinationEngine {
    modules: u64,
    module_rows: u64,
    module_cols: u64,
    group_vertices: u64,
    weight_working_bytes: u64,
    /// MLP dimension chain as (in, out) pairs.
    layers: Vec<(u64, u64)>,
    weight_base: u64,
    output_base: u64,
}

impl CombinationEngine {
    /// Builds the engine for an MLP with dimension chain `dims`
    /// (e.g. `[1433, 128]`), with weights and outputs at the given DRAM
    /// base addresses.
    pub fn new(config: &HyGcnConfig, dims: &[usize], weight_base: u64, output_base: u64) -> Self {
        let layers = dims
            .windows(2)
            .map(|w| (w[0] as u64, w[1] as u64))
            .collect();
        Self {
            modules: config.systolic_modules as u64,
            module_rows: config.module_rows as u64,
            module_cols: config.module_cols as u64,
            group_vertices: config.module_group_vertices as u64,
            weight_working_bytes: (config.weight_buffer_bytes / 2) as u64,
            layers,
            weight_base,
            output_base,
        }
    }

    /// Total PEs.
    pub fn total_pes(&self) -> u64 {
        self.modules * self.module_rows * self.module_cols
    }

    /// Shared-parameter bytes of the MLP (weights + biases).
    pub fn weight_bytes(&self) -> u64 {
        self.layers.iter().map(|&(i, o)| (i * o + o) * 4).sum()
    }

    /// MACs per vertex through the whole MLP.
    pub fn macs_per_vertex(&self) -> u64 {
        self.layers.iter().map(|&(i, o)| i * o).sum()
    }

    /// Output feature length.
    pub fn out_len(&self) -> u64 {
        self.layers.last().map_or(0, |&(_, o)| o)
    }

    /// Combines `vertices` aggregated results.
    ///
    /// `load_weights` requests the DRAM weight fill (first chunk, or every
    /// chunk when the weights exceed the Weight Buffer's working half).
    /// `extra_macs` folds in DiffPool's coarsening products for this
    /// chunk. `chunk_index` positions the output write-back in DRAM.
    /// DRAM requests are appended to `arena`; the record's `span` points
    /// at them.
    pub fn process_chunk(
        &self,
        vertices: u64,
        mode: SystolicMode,
        load_weights: bool,
        extra_macs: u64,
        chunk_index: u64,
        arena: &mut RequestArena,
    ) -> ChunkCombination {
        let span_start = arena.begin();
        let mut out = ChunkCombination {
            macs: vertices * self.macs_per_vertex() + extra_macs,
            ..ChunkCombination::default()
        };

        let pes = self.total_pes();
        let throughput_cycles = out.macs.div_ceil(pes.max(1));
        let fill = self.module_rows + self.module_cols;
        match mode {
            SystolicMode::Cooperative => {
                // One assembled array: a single fill across the chain.
                let chain_fill = self.modules * self.module_rows + self.module_cols;
                out.compute_cycles = throughput_cycles + chain_fill;
                out.first_group_cycles = out.compute_cycles;
                // Weights stream once per chunk through all modules.
                out.weight_buffer_bytes = self.weight_bytes();
            }
            SystolicMode::Independent => {
                let groups = vertices.div_ceil(self.group_vertices.max(1)).max(1);
                let waves = groups.div_ceil(self.modules.max(1));
                out.compute_cycles = throughput_cycles + waves * fill;
                // First small group completes after one group's work.
                let group_macs = self.group_vertices * self.macs_per_vertex();
                out.first_group_cycles =
                    group_macs.div_ceil(self.module_rows * self.module_cols) + fill;
                // Each group streams the weights through its module.
                out.weight_buffer_bytes = self.weight_bytes() * groups;
            }
        }

        // Activate Unit is fused into the drain; no extra cycles.
        out.agg_buffer_bytes = vertices * self.layers.first().map_or(0, |&(i, _)| i) * 4;
        out.output_buffer_bytes = 2 * vertices * self.out_len() * 4;

        if load_weights {
            let req = MemRequest::read(
                RequestKind::Weights,
                self.weight_base,
                self.weight_bytes() as u32,
            );
            out.summary.record(&req);
            arena.push(req);
        }
        let out_bytes = vertices * self.out_len() * 4;
        if out_bytes > 0 {
            let req = MemRequest::write(
                RequestKind::OutputFeatures,
                self.output_base + chunk_index * out_bytes,
                out_bytes as u32,
            );
            out.summary.record(&req);
            arena.push(req);
        }
        out.span = arena.finish(span_start);
        out
    }

    /// Whether the whole parameter set fits the Weight Buffer's working
    /// half (if not, every chunk must re-fill from DRAM).
    pub fn weights_resident(&self) -> bool {
        self.weight_bytes() <= self.weight_working_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(dims: &[usize]) -> CombinationEngine {
        CombinationEngine::new(&HyGcnConfig::default(), dims, 0, 1 << 32)
    }

    /// Runs `process_chunk` with a throwaway arena, returning the record
    /// plus the requests it produced.
    fn chunk(
        e: &CombinationEngine,
        vertices: u64,
        mode: SystolicMode,
        load_weights: bool,
        extra_macs: u64,
        chunk_index: u64,
    ) -> (ChunkCombination, Vec<MemRequest>) {
        let mut arena = RequestArena::new();
        let c = e.process_chunk(
            vertices,
            mode,
            load_weights,
            extra_macs,
            chunk_index,
            &mut arena,
        );
        let reqs = arena.slice(c.span).to_vec();
        (c, reqs)
    }

    #[test]
    fn mac_counts() {
        let e = engine(&[256, 128]);
        assert_eq!(e.macs_per_vertex(), 256 * 128);
        assert_eq!(e.weight_bytes(), (256 * 128 + 128) * 4);
        assert_eq!(e.out_len(), 128);
        assert_eq!(e.total_pes(), 4096);
    }

    #[test]
    fn gin_two_layer_chain() {
        let e = engine(&[602, 128, 128]);
        assert_eq!(e.macs_per_vertex(), 602 * 128 + 128 * 128);
    }

    #[test]
    fn cooperative_fewer_weight_reads_than_independent() {
        let e = engine(&[256, 128]);
        let (coop, _) = chunk(&e, 1024, SystolicMode::Cooperative, true, 0, 0);
        let (ind, _) = chunk(&e, 1024, SystolicMode::Independent, true, 0, 0);
        assert!(
            ind.weight_buffer_bytes > 10 * coop.weight_buffer_bytes,
            "independent {} vs cooperative {}",
            ind.weight_buffer_bytes,
            coop.weight_buffer_bytes
        );
        assert_eq!(coop.macs, ind.macs);
    }

    #[test]
    fn independent_has_lower_first_group_latency() {
        let e = engine(&[256, 128]);
        let (coop, _) = chunk(&e, 4096, SystolicMode::Cooperative, false, 0, 0);
        let (ind, _) = chunk(&e, 4096, SystolicMode::Independent, false, 0, 0);
        assert!(
            ind.first_group_cycles < coop.first_group_cycles,
            "independent {} vs cooperative {}",
            ind.first_group_cycles,
            coop.first_group_cycles
        );
    }

    #[test]
    fn throughput_cycles_scale_with_vertices() {
        let e = engine(&[128, 128]);
        let (small, _) = chunk(&e, 128, SystolicMode::Cooperative, false, 0, 0);
        let (large, _) = chunk(&e, 4096, SystolicMode::Cooperative, false, 0, 0);
        assert!(large.compute_cycles > 10 * small.compute_cycles / 4);
    }

    #[test]
    fn weight_residency_check() {
        // 1433x128 weights = 734 KB < 1 MB working half: resident.
        assert!(engine(&[1433, 128]).weights_resident());
        // 3703x128 = 1.9 MB > 1 MB: must re-fill per chunk.
        assert!(!engine(&[3703, 128]).weights_resident());
    }

    #[test]
    fn requests_emitted_for_weights_and_outputs() {
        let e = engine(&[64, 128]);
        let (c, reqs) = chunk(&e, 100, SystolicMode::Cooperative, true, 0, 2);
        assert_eq!(reqs.len(), 2);
        assert!(matches!(reqs[0].kind, RequestKind::Weights));
        let w = &reqs[1];
        assert!(w.is_write);
        assert_eq!(w.addr, (1 << 32) + 2 * 100 * 128 * 4);
        // Summary matches the emitted requests.
        assert_eq!(c.summary.total_count(), 2);
        assert_eq!(c.summary.write_bytes(), u64::from(w.bytes));
    }

    #[test]
    fn extra_macs_fold_into_cycles() {
        let e = engine(&[64, 128]);
        let (plain, _) = chunk(&e, 100, SystolicMode::Cooperative, false, 0, 0);
        let (extra, _) = chunk(&e, 100, SystolicMode::Cooperative, false, 1 << 20, 0);
        assert!(extra.compute_cycles > plain.compute_cycles);
        assert_eq!(extra.macs - plain.macs, 1 << 20);
    }

    #[test]
    fn zero_vertices_is_cheap() {
        let e = engine(&[64, 128]);
        let (c, reqs) = chunk(&e, 0, SystolicMode::Cooperative, false, 0, 0);
        assert_eq!(c.macs, 0);
        assert!(reqs.is_empty());
        assert!(c.span.is_empty());
    }
}
