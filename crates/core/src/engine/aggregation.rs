//! The Aggregation Engine (paper §4.3).
//!
//! Executes the edge-centric half of the programming model: for each
//! destination interval (chunk), the Sparsity Eliminator plans effectual
//! windows over the source dimension (Fig. 5), the prefetcher issues the
//! edge and feature loads, and eSched disperses the element-wise
//! accumulations over the 32 SIMD16 cores (Fig. 4). The engine emits a
//! per-chunk cost record; actual DRAM timing is resolved by the shared
//! memory handler in [`crate::sim`].

use hygcn_graph::partition::Interval;
use hygcn_graph::window::{EffectualWindow, WindowPlanner};

use hygcn_graph::{Graph, VertexId};
use hygcn_mem::request::{MemRequest, RequestArena, RequestKind, RequestSpan, RequestSummary};

use crate::config::{AggregationMode, HyGcnConfig};

/// Cost record for aggregating one destination chunk.
///
/// The chunk's DRAM requests live in the simulation-wide
/// [`RequestArena`]; the record carries only a [`RequestSpan`] locating
/// them plus a [`RequestSummary`] histogram for accounting, keeping the
/// record itself allocation-free.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChunkAggregation {
    /// SIMD compute cycles (including eSched issue and Sampler filtering).
    pub compute_cycles: u64,
    /// Element-wise accumulate operations executed.
    pub elem_ops: u64,
    /// Edges aggregated in this chunk.
    pub edges: u64,
    /// Source feature rows loaded from DRAM.
    pub feature_rows_loaded: u64,
    /// Per-kind histogram of the chunk's DRAM requests.
    pub summary: RequestSummary,
    /// Where the chunk's requests sit in the shared [`RequestArena`]
    /// (edge array + effectual feature windows).
    pub span: RequestSpan,
    /// Edge Buffer eDRAM traffic in bytes (fill + read).
    pub edge_buffer_bytes: u64,
    /// Input Buffer eDRAM traffic in bytes (fill + per-edge reads).
    pub input_buffer_bytes: u64,
    /// Aggregation Buffer write traffic in bytes (accumulator updates).
    pub agg_buffer_bytes: u64,
}

impl ChunkAggregation {
    /// Shifts the record's span by `offset` arena entries — used when a
    /// worker-local arena is spliced into the shared one.
    pub fn rebased(mut self, offset: u32) -> Self {
        self.span = self.span.rebased(offset);
        self
    }
}

/// The Aggregation Engine model.
#[derive(Debug, Clone)]
pub struct AggregationEngine {
    lanes: u64,
    cores: u64,
    simd_width: u64,
    mode: AggregationMode,
    sparsity_elimination: bool,
    window_height: usize,
    /// Base address of the (sampled) feature matrix `X^{k-1}` in DRAM.
    feature_base: u64,
    /// Base address of the edge array in DRAM.
    edge_base: u64,
}

impl AggregationEngine {
    /// Builds the engine for features of `feature_len` elements.
    ///
    /// `feature_base`/`edge_base` position the data structures in the
    /// physical address space (the memory handler's layout).
    pub fn new(
        config: &HyGcnConfig,
        feature_len: usize,
        feature_base: u64,
        edge_base: u64,
    ) -> Self {
        Self {
            lanes: config.simd_lanes() as u64,
            cores: config.simd_cores as u64,
            simd_width: config.simd_width as u64,
            mode: config.aggregation_mode,
            sparsity_elimination: config.sparsity_elimination,
            window_height: config.window_height(feature_len),
            feature_base,
            edge_base,
        }
    }

    /// The planned window height in source rows.
    pub fn window_height(&self) -> usize {
        self.window_height
    }

    /// Aggregates destination interval `dst` of `graph` (features of
    /// `feature_len`), including the self-term element work when
    /// `include_self`. `sampler_edges` is the count of *pre-sampling*
    /// edges the runtime Sampler had to filter (zero when not sampling).
    /// `paths` is the number of aggregation passes (2 for DiffPool).
    ///
    /// DRAM requests are appended to `arena` (the record's `span` points
    /// at them); `scratch` is a reusable source-row buffer for the window
    /// planner, so steady-state chunk processing performs no heap
    /// allocation.
    #[allow(clippy::too_many_arguments)]
    pub fn process_chunk(
        &self,
        graph: &Graph,
        dst: Interval,
        feature_len: usize,
        include_self: bool,
        sampler_edges: u64,
        paths: u64,
        arena: &mut RequestArena,
        scratch: &mut Vec<VertexId>,
    ) -> ChunkAggregation {
        let planner = WindowPlanner::new(self.window_height);
        self.record_chunk(
            graph,
            dst,
            feature_len,
            include_self,
            sampler_edges,
            paths,
            arena,
            &mut |emit| planner.plan_with(graph, dst, scratch, emit),
        )
    }

    /// [`AggregationEngine::process_chunk`] driven by fully precomputed
    /// effectual windows (one [`WindowSet`] slice per chunk) — the
    /// simulator's hot path: chunk workers never touch adjacency at all.
    ///
    /// [`WindowSet`]: hygcn_graph::window::WindowSet
    #[allow(clippy::too_many_arguments)]
    pub fn process_chunk_with_windows(
        &self,
        graph: &Graph,
        dst: Interval,
        feature_len: usize,
        include_self: bool,
        sampler_edges: u64,
        paths: u64,
        arena: &mut RequestArena,
        windows: &[EffectualWindow],
    ) -> ChunkAggregation {
        self.record_chunk(
            graph,
            dst,
            feature_len,
            include_self,
            sampler_edges,
            paths,
            arena,
            &mut |emit| {
                for w in windows {
                    emit(*w);
                }
            },
        )
    }

    /// Shared chunk-record construction; `plan` drives window emission
    /// when sparsity elimination is enabled.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn record_chunk(
        &self,
        graph: &Graph,
        dst: Interval,
        feature_len: usize,
        include_self: bool,
        sampler_edges: u64,
        paths: u64,
        arena: &mut RequestArena,
        plan: &mut dyn FnMut(&mut dyn FnMut(EffectualWindow)),
    ) -> ChunkAggregation {
        let row_bytes = (feature_len * 4) as u64;
        let mut out = ChunkAggregation::default();
        let span_start = arena.begin();

        // The chunk's edge count comes straight from the CSC offsets:
        // `dst`'s columns are contiguous, so the range length is the sum
        // every per-window `edge_count` would add up to. Deriving it here
        // (rather than summing window counts) lets span-only window
        // sources — the event-schedule fast path extracts windows from
        // occupancy bitmaps, which carry no multiplicity — reuse this
        // record construction unchanged.
        let offsets = graph.csc().offsets();
        let e_start = offsets[dst.start as usize] as u64;
        let e_end = offsets[dst.end as usize] as u64;
        out.edges = e_end - e_start;

        // --- Sparsity Eliminator: plan the effectual windows. ---
        if self.sparsity_elimination {
            let feature_base = self.feature_base;
            let mut rows_loaded = 0u64;
            #[cfg(debug_assertions)]
            let mut planned_edges = 0u64;
            let mut summary = out.summary;
            plan(&mut |w| {
                let rows = w.rows.len() as u64;
                rows_loaded += rows;
                #[cfg(debug_assertions)]
                {
                    planned_edges += w.edge_count as u64;
                }
                let req = MemRequest::read(
                    RequestKind::InputFeatures,
                    feature_base + u64::from(w.rows.start) * row_bytes,
                    (rows * row_bytes) as u32,
                );
                summary.record(&req);
                arena.push(req);
            });
            #[cfg(debug_assertions)]
            debug_assert!(
                planned_edges == 0 || planned_edges == out.edges,
                "window edge counts disagree with CSC: {planned_edges} vs {}",
                out.edges
            );
            out.feature_rows_loaded = rows_loaded;
            out.summary = summary;
        } else {
            // Full sweep: every source interval is loaded whole.
            let n = graph.num_vertices() as u64;
            let h = self.window_height as u64;
            let mut row = 0u64;
            while row < n {
                let rows = h.min(n - row);
                out.feature_rows_loaded += rows;
                let req = MemRequest::read(
                    RequestKind::InputFeatures,
                    self.feature_base + row * row_bytes,
                    (rows * row_bytes) as u32,
                );
                out.summary.record(&req);
                arena.push(req);
                row += rows;
            }
        }

        // --- Edge loads: the chunk's CSC columns are contiguous. ---
        if out.edges > 0 {
            let req = MemRequest::read(
                RequestKind::Edges,
                self.edge_base + e_start * 4,
                ((e_end - e_start) * 4) as u32,
            );
            out.summary.record(&req);
            arena.push(req);
        }
        out.span = arena.finish(span_start);

        // --- Compute: eSched dispatch + SIMD accumulation. ---
        let self_ops = if include_self {
            dst.len() as u64 * feature_len as u64
        } else {
            0
        };
        out.elem_ops = (out.edges * feature_len as u64 + self_ops) * paths;
        let issue_cycles = out.edges * paths / self.cores.max(1) + 1;
        let sampler_cycles = sampler_edges / self.cores.max(1);
        let accumulate_cycles = match self.mode {
            AggregationMode::VertexDisperse => out.elem_ops.div_ceil(self.lanes),
            AggregationMode::VertexConcentrated => {
                self.concentrated_cycles(graph, dst, feature_len) * paths
            }
        };
        out.compute_cycles = accumulate_cycles + issue_cycles + sampler_cycles;

        // --- On-chip buffer traffic. ---
        out.edge_buffer_bytes = 2 * out.edges * 4 * paths;
        out.input_buffer_bytes =
            out.feature_rows_loaded * row_bytes + out.edges * row_bytes * paths;
        // Accumulators are read-modify-written per element op.
        out.agg_buffer_bytes = 2 * out.elem_ops * 4;

        out
    }

    /// Vertex-concentrated mode: each vertex's whole reduction runs on one
    /// SIMD core (round-robin assignment); the chunk takes as long as the
    /// most loaded core (Fig. 4's workload-imbalance argument).
    fn concentrated_cycles(&self, graph: &Graph, dst: Interval, feature_len: usize) -> u64 {
        let cores = self.cores as usize;
        let mut loads = vec![0u64; cores];
        let per_edge = (feature_len as u64).div_ceil(self.simd_width);
        for (i, v) in dst.iter().enumerate() {
            let deg = graph.in_degree(v as VertexId) as u64;
            loads[i % cores] += deg.max(1) * per_edge;
        }
        loads.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use hygcn_graph::GraphBuilder;

    fn engine(cfg: &HyGcnConfig, f: usize) -> AggregationEngine {
        AggregationEngine::new(cfg, f, 0, 1 << 30)
    }

    /// Runs `process_chunk` with a throwaway arena, returning the record
    /// plus the requests it produced.
    fn chunk(
        e: &AggregationEngine,
        g: &Graph,
        dst: Interval,
        f: usize,
        include_self: bool,
        sampler_edges: u64,
        paths: u64,
    ) -> (ChunkAggregation, Vec<MemRequest>) {
        let mut arena = RequestArena::new();
        let mut scratch = Vec::new();
        let c = e.process_chunk(
            g,
            dst,
            f,
            include_self,
            sampler_edges,
            paths,
            &mut arena,
            &mut scratch,
        );
        let reqs = arena.slice(c.span).to_vec();
        (c, reqs)
    }

    fn star_graph() -> Graph {
        // Hub vertex 0 with 64 spokes; spokes also chained.
        let mut b = GraphBuilder::new(65).feature_len(32);
        for v in 1..=64u32 {
            b = b.edge(v, 0).unwrap();
        }
        b.build()
    }

    #[test]
    fn covers_all_chunk_edges() {
        let g = star_graph();
        let cfg = HyGcnConfig::default();
        let (c, _) = chunk(&engine(&cfg, 32), &g, Interval::new(0, 65), 32, false, 0, 1);
        assert_eq!(c.edges, 64);
        assert_eq!(c.elem_ops, 64 * 32);
    }

    #[test]
    fn sparsity_elimination_reduces_feature_loads() {
        let g = star_graph();
        let mut cfg = HyGcnConfig::default();
        cfg.sparsity_elimination = true;
        let (with, _) = chunk(&engine(&cfg, 32), &g, Interval::new(0, 1), 32, false, 0, 1);
        cfg.sparsity_elimination = false;
        let (without, _) = chunk(&engine(&cfg, 32), &g, Interval::new(0, 1), 32, false, 0, 1);
        assert!(with.feature_rows_loaded <= without.feature_rows_loaded);
        assert_eq!(with.edges, without.edges);
        // Vertex 0's sources are rows 1..=64: a contiguous window, so
        // elimination loads exactly those.
        assert_eq!(with.feature_rows_loaded, 64);
        assert_eq!(without.feature_rows_loaded, 65);
    }

    #[test]
    fn disperse_beats_concentrated_on_skewed_degrees() {
        let g = star_graph();
        let mut cfg = HyGcnConfig::default();
        cfg.aggregation_mode = AggregationMode::VertexDisperse;
        let (d, _) = chunk(&engine(&cfg, 32), &g, Interval::new(0, 65), 32, false, 0, 1);
        cfg.aggregation_mode = AggregationMode::VertexConcentrated;
        let (c, _) = chunk(&engine(&cfg, 32), &g, Interval::new(0, 65), 32, false, 0, 1);
        assert!(
            c.compute_cycles > d.compute_cycles,
            "concentrated {} vs disperse {}",
            c.compute_cycles,
            d.compute_cycles
        );
    }

    #[test]
    fn self_term_adds_vertex_ops() {
        let g = star_graph();
        let cfg = HyGcnConfig::default();
        let (no_self, _) = chunk(&engine(&cfg, 32), &g, Interval::new(0, 65), 32, false, 0, 1);
        let (with_self, _) = chunk(&engine(&cfg, 32), &g, Interval::new(0, 65), 32, true, 0, 1);
        assert_eq!(with_self.elem_ops - no_self.elem_ops, 65 * 32);
    }

    #[test]
    fn sampler_adds_filter_cycles() {
        let g = star_graph();
        let cfg = HyGcnConfig::default();
        let (plain, _) = chunk(&engine(&cfg, 32), &g, Interval::new(0, 65), 32, false, 0, 1);
        let (sampled, _) = chunk(
            &engine(&cfg, 32),
            &g,
            Interval::new(0, 65),
            32,
            false,
            64_000,
            1,
        );
        assert!(sampled.compute_cycles > plain.compute_cycles);
    }

    #[test]
    fn diffpool_paths_double_work() {
        let g = star_graph();
        let cfg = HyGcnConfig::default();
        let (one, _) = chunk(&engine(&cfg, 32), &g, Interval::new(0, 65), 32, false, 0, 1);
        let (two, _) = chunk(&engine(&cfg, 32), &g, Interval::new(0, 65), 32, false, 0, 2);
        assert_eq!(two.elem_ops, 2 * one.elem_ops);
    }

    #[test]
    fn requests_use_priority_classes() {
        let g = star_graph();
        let cfg = HyGcnConfig::default();
        let (c, reqs) = chunk(&engine(&cfg, 32), &g, Interval::new(0, 65), 32, false, 0, 1);
        assert!(reqs.iter().any(|r| r.kind == RequestKind::InputFeatures));
        assert!(reqs.iter().any(|r| r.kind == RequestKind::Edges));
        assert!(reqs.iter().all(|r| !r.is_write));
        // The summary histogram matches the emitted requests.
        assert_eq!(c.summary.total_count(), reqs.len() as u64);
        assert_eq!(
            c.summary.total_bytes(),
            reqs.iter().map(|r| u64::from(r.bytes)).sum::<u64>()
        );
        assert_eq!(c.summary.write_bytes(), 0);
    }

    #[test]
    fn empty_interval_is_cheap() {
        let g = GraphBuilder::new(8).feature_len(16).build();
        let cfg = HyGcnConfig::default();
        let (c, reqs) = chunk(&engine(&cfg, 16), &g, Interval::new(0, 8), 16, false, 0, 1);
        assert_eq!(c.edges, 0);
        assert_eq!(c.elem_ops, 0);
        assert!(reqs.is_empty());
    }
}
