//! The two processing engines of the hybrid architecture.
//!
//! The Aggregation Engine ([`aggregation`]) absorbs the dynamic, irregular
//! phase; the Combination Engine ([`combination`]) exploits the static,
//! regular phase. Each produces per-chunk cost records (compute cycles,
//! buffer traffic, DRAM requests) that the top-level simulator
//! ([`crate::sim`]) schedules through the shared memory access handler.

pub mod aggregation;
pub mod combination;
