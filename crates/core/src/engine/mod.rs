//! The two processing engines of the hybrid architecture.
//!
//! The Aggregation Engine ([`aggregation`]) absorbs the dynamic, irregular
//! phase; the Combination Engine ([`combination`]) exploits the static,
//! regular phase. Each produces per-chunk cost records (compute cycles,
//! buffer traffic, DRAM requests) that the top-level simulator
//! ([`crate::sim`]) schedules through the shared memory access handler.
//!
//! ## Request representation
//!
//! Chunk records are **allocation-free**: instead of owning a
//! `Vec<MemRequest>`, each record carries
//!
//! * a [`RequestSummary`](hygcn_mem::request::RequestSummary) — a
//!   per-[`RequestKind`](hygcn_mem::request::RequestKind) count/bytes
//!   histogram that the energy and traffic accounting reads without ever
//!   walking a request list, and
//! * a [`RequestSpan`](hygcn_mem::request::RequestSpan) — the record's
//!   slice of the simulation-wide
//!   [`RequestArena`](hygcn_mem::request::RequestArena), consulted only
//!   by the memory handler's timing walk.
//!
//! One arena allocation amortizes over every chunk of a `simulate()`
//! call; worker-local arenas from a parallel run are spliced back in
//! chunk order (see [`RequestSpan::rebased`]), which keeps the request
//! stream — and therefore the timing — bit-identical to a serial run.
//!
//! [`RequestSpan::rebased`]: hygcn_mem::request::RequestSpan::rebased
//!
//! ## The `parallel` feature
//!
//! Per-chunk records are computed concurrently across host threads
//! (chunks are independent by construction; the DRAM timing walk stays
//! serial). The `parallel` cargo feature (default on) gates the thread
//! machinery via the `hygcn-par` crate; disabling it — or setting
//! `HYGCN_THREADS=1` / `RAYON_NUM_THREADS=1` — degrades every helper to
//! a serial loop with identical results.

pub mod aggregation;
pub mod combination;
