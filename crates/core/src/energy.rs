//! Dynamic energy model and the Table 7 area/power breakdown.
//!
//! Datapath energies are 12 nm-scaled estimates (32-bit fixed point);
//! buffer energy comes from [`hygcn_mem::energy`]; HBM is 7 pJ/bit. The
//! static [`AreaPowerModel`] reproduces Table 7's synthesis results, which
//! downstream analyses (total power 6.7 W, area 7.8 mm²) consume directly.

use hygcn_mem::energy::{edram_energy_j, hbm_energy_j};

/// Energy of one 32-bit fixed-point MAC in a systolic PE, joules.
pub const MAC_J: f64 = 0.5e-12;
/// Energy of one SIMD accumulate element-op, joules.
pub const SIMD_OP_J: f64 = 0.3e-12;

/// Per-component dynamic energy of a simulated run.
///
/// The three engine components are *on-chip* energies (datapath +
/// eDRAM buffers) — the basis of the Fig. 12 breakdown, which, like the
/// Table 7 budget, covers the chip. Off-chip HBM energy is carried
/// separately in [`EnergyBreakdown::hbm_j`] and included in totals
/// (Fig. 11 compares platform energy including off-chip memory).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Aggregation Engine: SIMD datapath + Edge/Input buffers.
    pub aggregation_j: f64,
    /// Combination Engine: systolic datapath + Weight/Output buffers.
    pub combination_j: f64,
    /// Coordinator: the ping-pong Aggregation Buffer traffic.
    pub coordinator_j: f64,
    /// Off-chip HBM access energy (7 pJ/bit over all traffic).
    pub hbm_j: f64,
    /// Baseline chip power over the runtime (clock tree, leakage, idle
    /// lanes): the synthesized 6.7 W envelope × execution time, matching
    /// the paper's power×time methodology. Excluded from the Fig. 12
    /// activity shares.
    pub static_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules, off-chip memory and chip baseline included.
    pub fn total_j(&self) -> f64 {
        self.aggregation_j + self.combination_j + self.coordinator_j + self.hbm_j + self.static_j
    }

    /// On-chip total (the Fig. 12 denominator).
    pub fn on_chip_j(&self) -> f64 {
        self.aggregation_j + self.combination_j + self.coordinator_j
    }

    /// Each on-chip component's share, in paper order
    /// `(aggregation, combination, coordinator)`.
    pub fn shares(&self) -> (f64, f64, f64) {
        let t = self.on_chip_j();
        if t <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.aggregation_j / t,
            self.combination_j / t,
            self.coordinator_j / t,
        )
    }
}

/// Raw activity counters the simulator accumulates; converted to joules
/// by [`EnergyBreakdown::from_activity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Activity {
    /// SIMD element ops in the Aggregation Engine.
    pub simd_ops: u64,
    /// Systolic MACs in the Combination Engine.
    pub macs: u64,
    /// Edge + Input buffer eDRAM traffic, bytes.
    pub agg_buffer_traffic: u64,
    /// Weight + Output buffer eDRAM traffic, bytes.
    pub comb_buffer_traffic: u64,
    /// Aggregation (ping-pong) buffer eDRAM traffic, bytes.
    pub coordinator_buffer_traffic: u64,
    /// HBM bytes issued by the Aggregation Engine (edges + features).
    pub agg_hbm_bytes: u64,
    /// HBM bytes issued by the Combination Engine (weights + outputs).
    pub comb_hbm_bytes: u64,
    /// HBM bytes for intermediate-result spills (no-pipeline ablation).
    pub spill_hbm_bytes: u64,
}

impl EnergyBreakdown {
    /// Converts activity counters to joules.
    pub fn from_activity(a: &Activity) -> Self {
        Self {
            aggregation_j: a.simd_ops as f64 * SIMD_OP_J + edram_energy_j(a.agg_buffer_traffic),
            combination_j: a.macs as f64 * MAC_J + edram_energy_j(a.comb_buffer_traffic),
            coordinator_j: edram_energy_j(a.coordinator_buffer_traffic),
            hbm_j: hbm_energy_j(a.agg_hbm_bytes + a.comb_hbm_bytes + a.spill_hbm_bytes),
            static_j: 0.0,
        }
    }

    /// Adds the chip's baseline power envelope over `time_s` seconds.
    pub fn with_static(mut self, time_s: f64) -> Self {
        self.static_j = AreaPowerModel::default().total_power_w * time_s;
        self
    }
}

/// One row of Table 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentBudget {
    /// Module ("Aggregation Engine", ...).
    pub module: &'static str,
    /// Component within the module ("Buffer", "Computation", "Control").
    pub component: &'static str,
    /// Share of total power, percent.
    pub power_pct: f64,
    /// Share of total area, percent.
    pub area_pct: f64,
}

/// The synthesized area/power budget of HyGCN (Table 7; TSMC 12 nm,
/// 1 GHz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaPowerModel {
    /// Total power in watts.
    pub total_power_w: f64,
    /// Total area in mm².
    pub total_area_mm2: f64,
}

impl Default for AreaPowerModel {
    fn default() -> Self {
        Self {
            total_power_w: 6.7,
            total_area_mm2: 7.8,
        }
    }
}

impl AreaPowerModel {
    /// The Table 7 breakdown rows.
    pub fn breakdown() -> [ComponentBudget; 8] {
        [
            ComponentBudget {
                module: "Aggregation Engine",
                component: "Buffer",
                power_pct: 2.37,
                area_pct: 5.41,
            },
            ComponentBudget {
                module: "Aggregation Engine",
                component: "Computation",
                power_pct: 3.85,
                area_pct: 1.43,
            },
            ComponentBudget {
                module: "Aggregation Engine",
                component: "Control",
                power_pct: 0.48,
                area_pct: 0.18,
            },
            ComponentBudget {
                module: "Combination Engine",
                component: "Buffer",
                power_pct: 14.4,
                area_pct: 15.13,
            },
            ComponentBudget {
                module: "Combination Engine",
                component: "Computation",
                power_pct: 60.52,
                area_pct: 42.96,
            },
            ComponentBudget {
                module: "Combination Engine",
                component: "Control",
                power_pct: 0.31,
                area_pct: 0.07,
            },
            ComponentBudget {
                module: "Coordinator",
                component: "Buffer",
                power_pct: 17.66,
                area_pct: 34.64,
            },
            ComponentBudget {
                module: "Coordinator",
                component: "Control",
                power_pct: 0.41,
                area_pct: 0.19,
            },
        ]
    }

    /// Absolute power of one component, watts.
    pub fn component_power_w(&self, c: &ComponentBudget) -> f64 {
        self.total_power_w * c.power_pct / 100.0
    }

    /// Absolute area of one component, mm².
    pub fn component_area_mm2(&self, c: &ComponentBudget) -> f64 {
        self.total_area_mm2 * c.area_pct / 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums_to_roughly_100_percent() {
        let p: f64 = AreaPowerModel::breakdown()
            .iter()
            .map(|c| c.power_pct)
            .sum();
        let a: f64 = AreaPowerModel::breakdown().iter().map(|c| c.area_pct).sum();
        assert!((p - 100.0).abs() < 1.0, "power {p}%");
        assert!((a - 100.0).abs() < 1.0, "area {a}%");
    }

    #[test]
    fn combination_compute_dominates_power() {
        let rows = AreaPowerModel::breakdown();
        let comb_compute = rows
            .iter()
            .find(|c| c.module == "Combination Engine" && c.component == "Computation")
            .unwrap();
        assert!(rows.iter().all(|c| c.power_pct <= comb_compute.power_pct));
    }

    #[test]
    fn coordinator_area_is_large() {
        // The Aggregation Buffer gives the Coordinator ~35% of the area.
        let coord_buffer = AreaPowerModel::breakdown()
            .into_iter()
            .find(|c| c.module == "Coordinator" && c.component == "Buffer")
            .unwrap();
        assert!(coord_buffer.area_pct > 30.0);
    }

    #[test]
    fn energy_from_activity_attributes_correctly() {
        let a = Activity {
            simd_ops: 1_000_000,
            macs: 1_000_000,
            ..Default::default()
        };
        let e = EnergyBreakdown::from_activity(&a);
        assert!(e.combination_j > e.aggregation_j); // MAC_J > SIMD_OP_J
        assert_eq!(e.coordinator_j, 0.0);
        let (sa, sc, _) = e.shares();
        assert!((sa + sc - 1.0).abs() < 1e-9);
    }

    #[test]
    fn absolute_component_values() {
        let m = AreaPowerModel::default();
        let rows = AreaPowerModel::breakdown();
        let total_w: f64 = rows.iter().map(|c| m.component_power_w(c)).sum();
        assert!((total_w - 6.7).abs() < 0.1);
    }

    #[test]
    fn empty_breakdown_shares_are_zero() {
        assert_eq!(EnergyBreakdown::default().shares(), (0.0, 0.0, 0.0));
    }
}
