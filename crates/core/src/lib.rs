//! # hygcn-core
//!
//! The HyGCN accelerator simulator — the primary contribution of
//! *HyGCN: A GCN Accelerator with Hybrid Architecture* (HPCA 2020),
//! reproduced as a cycle-level, execution-driven model.
//!
//! ## Architecture (paper Fig. 3)
//!
//! ```text
//!        ┌────────────────────────┐   ┌──────────────────────────────┐
//!        │   Aggregation Engine   │   │      Combination Engine      │
//!        │  eSched · Sampler      │ C │  vSched · Weight Buffer      │
//!        │  Sparsity Eliminator   │ o │  8 systolic modules (4x128)  │
//!        │  32 x SIMD16 cores     │ o │  Activate Unit               │
//!        │  Edge/Input Buffers    │ r │  Output Buffer               │
//!        │  Aggregation Buffer <──┼─d─┼──> (ping-pong)               │
//!        └───────────┬────────────┘   └──────────────┬───────────────┘
//!                    └───────── Memory Access Handler┴──── HBM 256 GB/s
//! ```
//!
//! * [`engine::aggregation`] — edge-centric gather execution with
//!   interval–shard scheduling, window sliding/shrinking sparsity
//!   elimination, runtime neighbor sampling, and the vertex-disperse /
//!   vertex-concentrated SIMD modes of Fig. 4.
//! * [`engine::combination`] — multi-granular systolic modules (Fig. 6/7)
//!   in independent (latency-optimal) or cooperative (energy-optimal)
//!   working modes.
//! * [`coordinator`] — the ping-pong Aggregation Buffer and the latency- /
//!   energy-aware inter-engine pipelines of Fig. 8, plus the no-pipeline
//!   ablation (intermediate results spill to DRAM).
//! * [`sim`] — the execution-driven top level: drives both engines chunk
//!   by chunk through the shared memory access handler
//!   ([`hygcn_mem::Hbm`] + priority coordination) and produces a
//!   [`report::SimReport`].
//! * [`energy`] — dynamic energy and the Table 7 area/power model.
//! * [`functional`] — bit-level functional execution on the Q16.16
//!   fixed-point datapath, validated against the `hygcn-gcn` golden model.
//!
//! ## Example
//!
//! ```
//! use hygcn_core::config::HyGcnConfig;
//! use hygcn_core::sim::Simulator;
//! use hygcn_gcn::model::{GcnModel, ModelKind};
//! use hygcn_graph::generator::preferential_attachment;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = preferential_attachment(256, 4, 1)?.with_feature_len(64);
//! let model = GcnModel::new(ModelKind::Gcn, 64, 7)?;
//! let report = Simulator::new(HyGcnConfig::default()).simulate(&graph, &model)?;
//! assert!(report.cycles > 0);
//! # Ok(())
//! # }
//! ```

pub mod analytical;
pub mod backend;
pub mod config;
pub mod coordinator;
pub mod cycle_fast;
pub mod energy;
pub mod engine;
pub mod error;
pub mod functional;
pub mod layout;
pub mod report;
pub mod schedule;
pub mod sim;
pub mod sim_reference;
pub mod stack;
pub mod timeline;
pub mod training;
pub mod validate;

pub use analytical::AnalyticalBackend;
pub use backend::{core_backend, CycleAccurateBackend, SeedReferenceBackend, SimBackend};
pub use config::HyGcnConfig;
pub use cycle_fast::CycleFastBackend;
pub use error::SimError;
pub use report::SimReport;
pub use sim::Simulator;
