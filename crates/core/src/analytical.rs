//! The `analytical` backend: a first-order performance model for
//! campaign screening.
//!
//! Where [`Simulator::simulate`] executes the design — planning every
//! effectual window, materializing every DRAM request, and walking the
//! per-channel HBM state machines — this model *computes* the same
//! quantities in **O(chunks)** arithmetic, in the spirit of the
//! characterization methodology the paper itself uses to motivate the
//! design (§3, Table 2): per-phase operation counts, traffic volumes,
//! and a roofline-style memory term derived from the HBM geometry.
//!
//! The window sliding+shrinking machinery (the quantity the cycle model
//! spends an O(V+E) [`WindowPlanner`] sweep on) is replaced by a
//! closed-form occupancy model: with `m` edges landing uniformly on `n`
//! source rows, a row is occupied with probability `p = 1 - e^(-m/n)`,
//! gaps between occupied rows are geometric, and the expected window
//! count and loaded-row total follow in closed form from the window
//! height. Graph locality (which the cycle model observes and this one
//! cannot) is the main fidelity gap — the backend is validated by *rank
//! correlation* against the cycle-accurate backend over a pinned grid
//! (`tests/backends.rs`), not by absolute agreement.
//!
//! Fields the model cannot estimate honestly are zeroed
//! (`mem_channels`, `timeline`), and every report carries
//! `provenance: "analytical"`.
//!
//! [`Simulator::simulate`]: crate::sim::Simulator::simulate
//! [`WindowPlanner`]: hygcn_graph::window::WindowPlanner

use hygcn_gcn::aggregate::SelfTerm;
use hygcn_gcn::model::{GcnModel, ModelKind, DIFFPOOL_CLUSTERS};
use hygcn_graph::sampling::SamplePolicy;
use hygcn_graph::Graph;
use hygcn_mem::address::MappingScheme;
use hygcn_mem::cast::{round_u64, round_usize, widen_u64};
use hygcn_mem::hbm::ControllerPolicy;
use hygcn_mem::request::RequestArena;
use hygcn_mem::scheduler::CoordinationMode;
use hygcn_mem::MemStats;

use crate::backend::SimBackend;
use crate::config::{AggregationMode, HyGcnConfig, PipelineMode};
use crate::energy::{Activity, EnergyBreakdown};
use crate::engine::combination::{CombinationEngine, SystolicMode};
use crate::error::SimError;
use crate::layout::AddressLayout;
use crate::report::SimReport;

/// Imbalance penalty of pinning whole vertices to SIMD cores
/// (vertex-concentrated mode): the cycle model measures the true
/// max-loaded core; the analytical model charges a fixed skew factor
/// (power-law degree distributions keep the slowest core around twice
/// the mean on the Table 4 workloads).
const CONCENTRATED_IMBALANCE: f64 = 2.0;

/// Row-miss inflation of FCFS scheduling relative to priority batching:
/// un-batched request streams interleave kinds and addresses, re-opening
/// rows the coordinated order would have streamed through.
const FCFS_MISS_FACTOR: f64 = 1.5;

/// Row-miss relief of FR-FCFS reordering (row-hit-first rescue within
/// the controller's lookahead window).
const FRFCFS_MISS_FACTOR: f64 = 0.7;

/// The row-interleaved (uncoordinated) mapping places one contiguous
/// 128 MB span per channel — `hygcn_mem::address`'s `CHANNEL_SPAN` — so
/// small workloads concentrate on few channels.
const CHANNEL_SPAN_BYTES: f64 = (128u64 << 20) as f64;

/// The first-order analytical evaluation backend (id `"analytical"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticalBackend;

impl SimBackend for AnalyticalBackend {
    fn backend_id(&self) -> &'static str {
        "analytical"
    }

    fn evaluate(
        &self,
        graph: &Graph,
        model: &GcnModel,
        config: &HyGcnConfig,
    ) -> Result<SimReport, SimError> {
        hygcn_obs::observe_eval(self.backend_id(), || {
            analytical_report(graph, model, config)
        })
    }
}

// `round_u64` and its relatives live in `hygcn_mem::cast` (shared with
// the baseline cost models); this file is a `cost_paths` member in
// `lint.toml`, so every numeric conversion below must name one.

/// Expected occupied rows, effectual windows, and loaded rows for one
/// chunk: `m` edges uniform over `n` source rows, window height `h`.
///
/// Returns `(occupied, windows, rows_loaded)`.
fn occupancy(n: f64, m: f64, h: f64) -> (f64, f64, f64) {
    if n <= 0.0 || m <= 0.0 {
        return (0.0, 0.0, 0.0);
    }
    // P(row occupied) for m uniform darts on n rows.
    let p = (1.0 - (-m / n).exp()).clamp(1e-12, 1.0);
    let q = 1.0 - p;
    let occupied = n * p;
    // Gaps between consecutive occupied rows are Geometric(p) on
    // support >= 1; a window break happens on a gap > h.
    let qh = q.powf(h);
    let pairs = (occupied - 1.0).max(0.0);
    let windows = 1.0 + pairs * qh;
    // Interior (non-occupied, still loaded) rows per non-breaking pair:
    // E[(G-1) * 1{G <= h}] for G ~ Geometric(p), closed form.
    let interior = if q > 0.0 {
        (q * (1.0 - h * q.powf(h - 1.0) + (h - 1.0) * qh) / p).max(0.0)
    } else {
        0.0
    };
    let rows_loaded = (occupied + pairs * interior).min(n);
    (occupied, windows, rows_loaded)
}

/// Expected edge count after runtime sampling, plus the pre-sampling
/// edge volume the Sampler must filter (0 when not sampling).
fn sampled_edges(policy: SamplePolicy, n: f64, e: f64) -> (f64, f64) {
    match policy {
        SamplePolicy::All => (e, 0.0),
        // Upper bound: every vertex at the cap. Hub-heavy graphs retain
        // fewer; the bound preserves the ranking across cap values.
        SamplePolicy::MaxNeighbors(cap) => (e.min(n * cap as f64), e),
        SamplePolicy::Factor(f) | SamplePolicy::Strided(f) => (e / (f.max(1) as f64), e),
    }
}

#[allow(clippy::too_many_lines)]
fn analytical_report(
    graph: &Graph,
    model: &GcnModel,
    cfg: &HyGcnConfig,
) -> Result<SimReport, SimError> {
    // --- Input validation: identical contract to `simulate()`. ---
    crate::validate::validate_inputs(graph, model, cfg)?;
    let f_in = model.feature_len();
    let row_bytes = widen_u64(f_in * 4);

    let kind = model.kind();
    let policy = cfg.sample_policy_override.unwrap_or(kind.sample_policy());
    let n = graph.num_vertices() as f64;
    let (e_eff, presample) = sampled_edges(policy, n, graph.num_edges() as f64);
    let include_self = !matches!(kind.self_term(), SelfTerm::None);
    let paths = if kind == ModelKind::DiffPool {
        2.0
    } else {
        1.0
    };
    let clusters = DIFFPOOL_CLUSTERS as f64;
    let fw = f_in as f64;

    let dims = kind.mlp_dims(f_in);
    let comb = CombinationEngine::new(cfg, &dims, 0, 0);
    let weights_resident = comb.weights_resident();
    let out_len = comb.out_len() as f64;
    let mode = match cfg.pipeline {
        PipelineMode::LatencyAware => SystolicMode::Independent,
        PipelineMode::EnergyAware | PipelineMode::None => SystolicMode::Cooperative,
    };

    let chunk_w = cfg.chunk_width(f_in) as f64;
    let nchunks = round_usize((n / chunk_w).ceil().max(1.0));
    let h = cfg.window_height(f_in) as f64;
    let lanes = cfg.simd_lanes().max(1) as f64;
    let cores = cfg.simd_cores.max(1) as f64;

    // --- Roofline memory term from the HBM geometry. ---
    let hbm = &cfg.hbm;
    let layout = AddressLayout::new(
        widen_u64(graph.num_vertices()),
        widen_u64(graph.num_edges()),
        row_bytes,
        &dims,
    );
    let footprint = layout.spill_base as f64 + n * row_bytes as f64 * paths;
    let effective_channels = match hbm.mapping {
        // Coordinated: consecutive DRAM rows round-robin the channels.
        MappingScheme::ChannelInterleaved => hbm.channels as f64,
        // Uncoordinated: one 128 MB span per channel, so the workload
        // only spreads over the spans its footprint crosses.
        MappingScheme::RowInterleaved => (footprint / CHANNEL_SPAN_BYTES)
            .ceil()
            .clamp(1.0, hbm.channels as f64),
    };
    let miss_factor = match cfg.coordination {
        CoordinationMode::PriorityBatched => 1.0,
        CoordinationMode::Fcfs => FCFS_MISS_FACTOR,
    } * match hbm.controller {
        ControllerPolicy::InOrder => 1.0,
        ControllerPolicy::FrFcfs { .. } => FRFCFS_MISS_FACTOR,
    };
    let hbm_row = hbm.row_bytes as f64;
    let burst = hbm.burst_bytes as f64;
    let (t_burst, t_row, t_cas) = (hbm.t_burst as f64, hbm.t_row as f64, hbm.t_cas as f64);
    // Cycles to drain `bytes` issued as `requests` DRAM requests, and
    // the estimated row misses the drain exposes.
    let mem_misses = |bytes: f64, requests: f64| (bytes / hbm_row + requests) * miss_factor;
    let mem_cycles = |bytes: f64, requests: f64| {
        if bytes <= 0.0 {
            return 0.0;
        }
        let bursts = (bytes / burst).ceil();
        (bursts * t_burst + mem_misses(bytes, requests) * t_row) / effective_channels + t_cas
    };

    // --- Per-chunk cost records (O(1) arithmetic each). ---
    struct Chunk {
        verts: f64,
        agg_cycles: f64,
        comb_cycles: f64,
        first_group_cycles: f64,
        agg_bytes: f64,
        agg_requests: f64,
        comb_bytes: f64,
        comb_requests: f64,
        spill_bytes: f64,
    }
    let mut chunks: Vec<Chunk> = Vec::with_capacity(nchunks);
    let mut act = Activity::default();
    let mut arena = RequestArena::new();
    let mut elem_ops_total = 0.0f64;
    let mut macs_total = 0u64;
    let mut rows_total = 0.0f64;
    let mut windows_total = 0.0f64;
    let mut bytes_read = 0.0f64;
    let mut bytes_written = 0.0f64;
    let mut requests_total = 0.0f64;
    let mut misses_total = 0.0f64;

    for i in 0..nchunks {
        let verts = if i + 1 == nchunks {
            n - chunk_w * (nchunks - 1) as f64
        } else {
            chunk_w
        };
        let edges = e_eff * verts / n.max(1.0);

        // Aggregation: occupancy-model window planning.
        let (_, windows, rows) = if cfg.sparsity_elimination {
            occupancy(n, edges, h)
        } else {
            (n, (n / h).ceil(), n)
        };
        let self_ops = if include_self { verts * fw } else { 0.0 };
        let elem_ops = (edges * fw + self_ops) * paths;
        let accumulate = match cfg.aggregation_mode {
            AggregationMode::VertexDisperse => (elem_ops / lanes).ceil(),
            AggregationMode::VertexConcentrated => {
                (elem_ops / lanes).ceil() * CONCENTRATED_IMBALANCE
            }
        };
        let issue = edges * paths / cores + 1.0;
        let sampler = presample / nchunks as f64 / cores;
        let agg_cycles = accumulate + issue + sampler;

        // Combination: the real engine's O(1) cost formulas, reused.
        let extra_macs = if kind == ModelKind::DiffPool {
            round_u64(
                verts * fw * clusters
                    + verts * clusters * out_len
                    + edges * clusters * clusters / 64.0,
            )
        } else {
            0
        };
        let load_weights = i == 0 || !weights_resident;
        let c = comb.process_chunk(
            // verts is an integral f64 (chunk width or remainder), so
            // rounding and the old truncation agree exactly.
            round_u64(verts),
            mode,
            load_weights,
            extra_macs,
            widen_u64(i),
            &mut arena,
        );

        // Traffic.
        let agg_bytes = rows * row_bytes as f64 + edges * 4.0;
        let agg_requests = windows + 1.0;
        let comb_bytes = c.summary.total_bytes() as f64;
        let comb_requests = c.summary.total_count() as f64;
        let spill_bytes = if cfg.pipeline == PipelineMode::None {
            verts * row_bytes as f64 * paths
        } else {
            0.0
        };

        // Activity accounting (mirrors `simulate()`'s fold).
        act.simd_ops += round_u64(elem_ops);
        act.agg_buffer_traffic += round_u64(
            2.0 * edges * 4.0 * paths + rows * row_bytes as f64 + edges * row_bytes as f64 * paths,
        );
        act.coordinator_buffer_traffic += round_u64(2.0 * elem_ops * 4.0) + c.agg_buffer_bytes;
        act.agg_hbm_bytes += round_u64(agg_bytes);
        act.macs += c.macs;
        act.comb_buffer_traffic += c.weight_buffer_bytes + c.output_buffer_bytes;
        act.comb_hbm_bytes += c.summary.total_bytes();
        act.spill_hbm_bytes += round_u64(2.0 * spill_bytes);

        elem_ops_total += elem_ops;
        macs_total += c.macs;
        rows_total += rows;
        windows_total += windows;
        bytes_read += agg_bytes + (comb_bytes - c.summary.write_bytes() as f64) + spill_bytes;
        bytes_written += c.summary.write_bytes() as f64 + spill_bytes;
        requests_total += agg_requests + comb_requests + if spill_bytes > 0.0 { 2.0 } else { 0.0 };
        misses_total += mem_misses(
            agg_bytes + comb_bytes + 2.0 * spill_bytes,
            agg_requests + comb_requests,
        );

        chunks.push(Chunk {
            verts,
            agg_cycles,
            comb_cycles: c.compute_cycles as f64,
            first_group_cycles: c.first_group_cycles as f64,
            agg_bytes,
            agg_requests,
            comb_bytes,
            comb_requests,
            spill_bytes,
        });
    }

    // --- Pipeline composition (mirrors the cycle model's step logic). ---
    let mut cycles = 0.0f64;
    let mut agg_compute = 0.0f64;
    let mut comb_compute = 0.0f64;
    let mut latency_weighted = 0.0f64;
    match cfg.pipeline {
        PipelineMode::None => {
            for c in &chunks {
                let mem_a = mem_cycles(c.agg_bytes + c.spill_bytes, c.agg_requests + 1.0);
                let mem_b = mem_cycles(c.comb_bytes + c.spill_bytes, c.comb_requests + 1.0);
                let step_a = c.agg_cycles.max(mem_a);
                let step_b = c.comb_cycles.max(mem_b);
                cycles += step_a + step_b;
                agg_compute += c.agg_cycles;
                comb_compute += c.comb_cycles;
                latency_weighted += (step_a + step_b) * c.verts;
            }
        }
        PipelineMode::LatencyAware | PipelineMode::EnergyAware => {
            let same_chunk = cfg.pipeline == PipelineMode::LatencyAware;
            let steps = if same_chunk {
                chunks.len()
            } else {
                chunks.len() + 1
            };
            let mut agg_step_time = vec![0.0f64; chunks.len()];
            for s in 0..steps {
                let comb_idx = if same_chunk {
                    Some(s)
                } else {
                    s.checked_sub(1)
                };
                let (mut bytes, mut requests, mut compute_a, mut compute_b) = (0.0, 0.0, 0.0, 0.0);
                if s < chunks.len() {
                    bytes += chunks[s].agg_bytes;
                    requests += chunks[s].agg_requests;
                    compute_a = chunks[s].agg_cycles;
                    agg_compute += compute_a;
                }
                if let Some(c) = comb_idx.filter(|&c| c < chunks.len()) {
                    bytes += chunks[c].comb_bytes;
                    requests += chunks[c].comb_requests;
                    compute_b = chunks[c].comb_cycles;
                    comb_compute += compute_b;
                }
                let step = compute_a.max(compute_b).max(mem_cycles(bytes, requests));
                if s < chunks.len() {
                    agg_step_time[s] = step;
                }
                cycles += step;
            }
            for (i, c) in chunks.iter().enumerate() {
                let latency = match mode {
                    SystolicMode::Independent => {
                        let assembly =
                            cfg.module_group_vertices as f64 * agg_step_time[i] / c.verts.max(1.0);
                        agg_step_time[i] * 0.75 + assembly + c.first_group_cycles
                    }
                    SystolicMode::Cooperative => agg_step_time[i] + c.comb_cycles,
                };
                latency_weighted += latency * c.verts;
            }
        }
    }

    // --- Report assembly. ---
    let cycles_u = round_u64(cycles).max(1);
    let time_s = cfg.cycles_to_seconds(cycles_u);
    let bursts_total = round_u64(((bytes_read + bytes_written) / burst).ceil());
    let misses_u = round_u64(misses_total).min(bursts_total);
    let stats = MemStats {
        bytes_read: round_u64(bytes_read),
        bytes_written: round_u64(bytes_written),
        row_hits: bursts_total - misses_u,
        row_misses: misses_u,
        requests: round_u64(requests_total),
        last_completion: cycles_u,
    };
    let baseline_rows = n * nchunks as f64;
    let _ = windows_total;
    Ok(SimReport {
        cycles: cycles_u,
        time_s,
        agg_compute_cycles: round_u64(agg_compute),
        comb_compute_cycles: round_u64(comb_compute),
        bandwidth_utilization: stats.bandwidth_utilization(cycles_u, hbm.peak_bytes_per_cycle()),
        mem: stats,
        mem_channels: Vec::new(),
        energy: EnergyBreakdown::from_activity(&act).with_static(time_s),
        avg_vertex_latency_cycles: latency_weighted / n.max(1.0),
        sparsity_reduction: if cfg.sparsity_elimination && baseline_rows > 0.0 {
            (1.0 - rows_total / baseline_rows).max(0.0)
        } else {
            0.0
        },
        chunks: nchunks,
        elem_ops: round_u64(elem_ops_total),
        macs: macs_total,
        timeline: Vec::new(),
        provenance: "analytical",
    })
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use hygcn_graph::generator::{preferential_attachment, rmat, RmatParams};

    fn graph(n: usize, f: usize) -> Graph {
        preferential_attachment(n, 4, 1)
            .unwrap()
            .with_feature_len(f)
    }

    fn run(cfg: HyGcnConfig, g: &Graph, m: &GcnModel) -> SimReport {
        AnalyticalBackend.evaluate(g, m, &cfg).unwrap()
    }

    #[test]
    fn report_is_populated_and_marked() {
        let g = graph(2048, 64);
        let m = GcnModel::new(ModelKind::Gcn, 64, 1).unwrap();
        let r = run(HyGcnConfig::default(), &g, &m);
        assert!(r.cycles > 1);
        assert!(r.time_s > 0.0);
        assert!(r.energy_j() > 0.0);
        assert!(r.dram_bytes() > 0);
        assert!(r.bandwidth_utilization > 0.0 && r.bandwidth_utilization <= 1.0);
        assert_eq!(r.provenance, "analytical");
        // Fields the model cannot estimate stay zeroed.
        assert!(r.mem_channels.is_empty());
        assert!(r.timeline.is_empty());
    }

    #[test]
    fn evaluation_is_deterministic() {
        let g = graph(1024, 128);
        let m = GcnModel::new(ModelKind::Gcn, 128, 1).unwrap();
        let a = run(HyGcnConfig::default(), &g, &m);
        let b = run(HyGcnConfig::default(), &g, &m);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn tracks_cycle_model_directionally() {
        let g = rmat(4096, 40_000, RmatParams::default(), 3)
            .unwrap()
            .with_feature_len(128);
        let m = GcnModel::new(ModelKind::Gcn, 128, 1).unwrap();
        let mut cfg = HyGcnConfig::default();
        cfg.aggregation_buffer_bytes = 1 << 20;
        let base = run(cfg.clone(), &g, &m);

        // Sparsity elimination reduces DRAM traffic and never hurts.
        cfg.sparsity_elimination = false;
        let no_sparsity = run(cfg.clone(), &g, &m);
        assert!(base.dram_bytes() < no_sparsity.dram_bytes());
        assert!(base.sparsity_reduction > 0.0);
        assert!(no_sparsity.sparsity_reduction.abs() < 1e-12);
        cfg.sparsity_elimination = true;

        // No pipeline pays spills and serialization.
        cfg.pipeline = PipelineMode::None;
        let no_pipe = run(cfg.clone(), &g, &m);
        assert!(no_pipe.cycles > base.cycles);
        assert!(no_pipe.dram_bytes() > base.dram_bytes());
        cfg.pipeline = PipelineMode::LatencyAware;

        // Fewer channels bound bandwidth harder.
        cfg.hbm.channels = 2;
        let narrow = run(cfg.clone(), &g, &m);
        assert!(narrow.cycles > base.cycles);
        cfg.hbm = hygcn_mem::HbmConfig::hbm1();

        // The uncoordinated memory system is slower.
        cfg.coordination = CoordinationMode::Fcfs;
        cfg.hbm = hygcn_mem::HbmConfig::hbm1_uncoordinated();
        let uncoord = run(cfg, &g, &m);
        assert!(uncoord.cycles > base.cycles);
    }

    #[test]
    fn latency_pipeline_has_lower_vertex_latency_than_energy() {
        let g = graph(4096, 128);
        let m = GcnModel::new(ModelKind::Gcn, 128, 1).unwrap();
        let mut cfg = HyGcnConfig::default();
        cfg.pipeline = PipelineMode::LatencyAware;
        let lat = run(cfg.clone(), &g, &m);
        cfg.pipeline = PipelineMode::EnergyAware;
        let en = run(cfg, &g, &m);
        assert!(lat.avg_vertex_latency_cycles < en.avg_vertex_latency_cycles);
        assert!(en.energy.combination_j < lat.energy.combination_j);
    }

    #[test]
    fn sampling_and_model_structure_register() {
        let g = rmat(1024, 60_000, RmatParams::default(), 5)
            .unwrap()
            .with_feature_len(64);
        let gcn = GcnModel::new(ModelKind::Gcn, 64, 1).unwrap();
        let gsc = GcnModel::new(ModelKind::GraphSage, 64, 1).unwrap();
        let dfp = GcnModel::new(ModelKind::DiffPool, 64, 1).unwrap();
        let cfg = HyGcnConfig::default();
        let r_gcn = run(cfg.clone(), &g, &gcn);
        let r_gsc = run(cfg.clone(), &g, &gsc);
        let r_dfp = run(cfg, &g, &dfp);
        assert!(r_gsc.elem_ops < r_gcn.elem_ops, "sampling reduces work");
        assert!(r_dfp.macs > r_gcn.macs, "DiffPool adds coarsening MACs");
    }

    #[test]
    fn input_contract_matches_simulator() {
        let g = graph(64, 32);
        let wrong = GcnModel::new(ModelKind::Gcn, 64, 1).unwrap();
        assert!(matches!(
            AnalyticalBackend.evaluate(&g, &wrong, &HyGcnConfig::default()),
            Err(SimError::Gcn(_))
        ));
        let g = graph(64, 4096);
        let m = GcnModel::new(ModelKind::Gcn, 4096, 1).unwrap();
        let cfg = HyGcnConfig {
            input_buffer_bytes: 8 << 10,
            ..HyGcnConfig::default()
        };
        assert!(matches!(
            AnalyticalBackend.evaluate(&g, &m, &cfg),
            Err(SimError::BufferTooSmall {
                buffer: "input",
                ..
            })
        ));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]
        /// Adding edges to a fixed vertex set never makes the analytical
        /// model report fewer cycles or less DRAM traffic. Before the
        /// rounding fix this held only by luck: the bare `as u64` casts
        /// truncated each chunk's totals independently, so a larger
        /// float total could land on a smaller integer.
        #[test]
        fn analytical_is_monotone_in_edge_count(
            n in 256usize..2048,
            m1 in 1usize..20_000,
            extra in 1usize..20_000,
            seed in 0u64..64,
        ) {
            let m2 = m1 + extra;
            let f = 64;
            let make = |m: usize| {
                rmat(n, m, RmatParams::default(), seed)
                    .unwrap()
                    .with_feature_len(f)
            };
            let model = GcnModel::new(ModelKind::Gcn, f, 1).unwrap();
            let cfg = HyGcnConfig::default();
            let sparse = AnalyticalBackend.evaluate(&make(m1), &model, &cfg).unwrap();
            let dense = AnalyticalBackend.evaluate(&make(m2), &model, &cfg).unwrap();
            proptest::prop_assert!(
                dense.cycles >= sparse.cycles,
                "cycles fell when edges grew: {} edges -> {}, {} edges -> {}",
                m1, sparse.cycles, m2, dense.cycles,
            );
            proptest::prop_assert!(
                dense.dram_bytes() >= sparse.dram_bytes(),
                "dram fell when edges grew: {} edges -> {}, {} edges -> {}",
                m1, sparse.dram_bytes(), m2, dense.dram_bytes(),
            );
        }
    }

    #[test]
    fn round_u64_rounds_and_saturates() {
        assert_eq!(round_u64(0.0), 0);
        assert_eq!(round_u64(-3.7), 0);
        assert_eq!(round_u64(f64::NAN), 0);
        assert_eq!(round_u64(99.4), 99);
        assert_eq!(round_u64(99.5), 100, "round, not truncate");
        assert_eq!(round_u64(99.999_999), 100, "the old cast lost this");
        assert_eq!(round_u64(f64::INFINITY), u64::MAX);
        assert_eq!(round_u64(1e300), u64::MAX);
    }

    #[test]
    fn occupancy_model_limits() {
        // No edges: nothing occupied, nothing loaded.
        assert_eq!(occupancy(1000.0, 0.0, 16.0), (0.0, 0.0, 0.0));
        // Saturated: every row occupied, loads bounded by n.
        let (occ, windows, rows) = occupancy(1000.0, 1e9, 16.0);
        assert!((occ - 1000.0).abs() < 1.0);
        assert!(rows <= 1000.0);
        assert!(
            (1.0..10.0).contains(&windows),
            "dense rows merge: {windows}"
        );
        // Sparse: few occupied rows, tall windows bridge nothing.
        let (occ, windows, rows) = occupancy(1_000_000.0, 10.0, 16.0);
        assert!(occ < 11.0);
        assert!(windows > 9.0, "isolated rows stay separate: {windows}");
        assert!(rows < 12.0);
    }
}
