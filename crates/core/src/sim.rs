//! Execution-driven top-level simulation.
//!
//! The simulator walks the (sampled) graph chunk by chunk — a chunk being
//! the destination interval whose partial aggregation results fill one
//! ping-pong half of the Aggregation Buffer — and schedules the two
//! engines' compute and the shared HBM through the configured pipeline
//! mode. HyGCN executes Aggregation before Combination within each chunk
//! (the edge- and MVM-centric programming model of Algorithm 1), unlike
//! the Combine-first lowering frameworks use on CPU/GPU.
//!
//! ## Host-side parallelism
//!
//! Destination chunks are independent by construction (the property the
//! accelerator's inter-engine pipeline itself exploits), so the per-chunk
//! engine cost records are computed **in parallel** across host threads:
//! each worker takes a contiguous range of chunk indices and fills a
//! worker-local [`RequestArena`], and the locals are spliced back in
//! chunk order. Only the DRAM timing walk — which threads shared
//! bank/bus state through the memory handler — stays serial. The result
//! is bit-identical to a serial run for any thread count (set
//! `HYGCN_THREADS=1` to force serial; the `parallel` feature gates the
//! whole machinery).

use hygcn_gcn::aggregate::SelfTerm;
use hygcn_gcn::model::{GcnModel, ModelKind, DIFFPOOL_CLUSTERS};
use hygcn_graph::partition::Interval;
use hygcn_graph::sampling::Sampler;
use hygcn_graph::window::WindowPlanner;
use hygcn_graph::{Graph, VertexId};
use hygcn_mem::request::{MemRequest, RequestArena, RequestKind};
use hygcn_mem::scheduler::AccessScheduler;

use crate::config::{HyGcnConfig, PipelineMode};
use crate::energy::{Activity, EnergyBreakdown};
use crate::engine::aggregation::{AggregationEngine, ChunkAggregation};
use crate::engine::combination::{ChunkCombination, CombinationEngine, SystolicMode};
use crate::error::SimError;
use crate::layout::AddressLayout;
use crate::report::SimReport;
use crate::timeline::{ChannelWalk, ChunkTrace};

/// The HyGCN accelerator simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: HyGcnConfig,
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: HyGcnConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &HyGcnConfig {
        &self.config
    }

    /// Simulates one layer of `model` over `graph`.
    ///
    /// # Errors
    ///
    /// * [`SimError::BufferTooSmall`] when a buffer cannot hold a single
    ///   feature vector of the model's input length.
    /// * [`SimError::Gcn`] when the graph's feature length disagrees with
    ///   the model's.
    pub fn simulate(&self, graph: &Graph, model: &GcnModel) -> Result<SimReport, SimError> {
        let cfg = &self.config;
        crate::validate::validate_inputs(graph, model, cfg)?;
        let f_in = model.feature_len();
        let row_bytes = f_in * 4;

        // --- Sampling (runs on the engine's Sampler at runtime). ---
        let kind = model.kind();
        let policy = cfg.sample_policy_override.unwrap_or(kind.sample_policy());
        let sampled_storage;
        let (g, presample_edges) = if policy.is_sampling() {
            sampled_storage = Sampler::new(cfg.sample_seed).sample(graph, policy);
            (&sampled_storage, graph.num_edges() as u64)
        } else {
            (graph, 0)
        };

        // --- Physical layout (all regions page-aligned). ---
        let n = g.num_vertices() as u64;
        let dims = kind.mlp_dims(f_in);
        let layout = AddressLayout::new(n, g.num_edges() as u64, row_bytes as u64, &dims);
        let agg_engine = AggregationEngine::new(cfg, f_in, layout.feature_base, layout.edge_base);
        let comb_engine =
            CombinationEngine::new(cfg, &dims, layout.weight_base, layout.output_base);
        let spill_base = layout.spill_base;

        // --- Per-chunk engine records. ---
        let include_self = !matches!(kind.self_term(), SelfTerm::None);
        let paths: u64 = if kind == ModelKind::DiffPool { 2 } else { 1 };
        let chunk_w = cfg.chunk_width(f_in) as u32;
        let mut intervals = Vec::new();
        let mut start = 0u32;
        while u64::from(start) < n {
            let end = (start + chunk_w).min(n as u32);
            intervals.push(Interval::new(start, end));
            start = end;
        }
        let num_chunks = intervals.len().max(1) as u64;
        let presample_per_chunk = presample_edges / num_chunks;

        let mode = match cfg.pipeline {
            PipelineMode::LatencyAware => SystolicMode::Independent,
            PipelineMode::EnergyAware | PipelineMode::None => SystolicMode::Cooperative,
        };
        let weights_resident = comb_engine.weights_resident();
        let clusters = DIFFPOOL_CLUSTERS as u64;

        // With sparsity elimination on, one O(V+E) CSR sweep precomputes
        // every chunk's effectual windows so chunk workers never re-scan
        // (or sort) adjacency.
        let window_set = if cfg.sparsity_elimination {
            let _obs = hygcn_obs::span(hygcn_obs::Phase::WindowPlan);
            let planner = WindowPlanner::new(agg_engine.window_height());
            Some(planner.plan_all(g, &intervals))
        } else {
            None
        };

        // One simulate() call owns one arena; worker-local arenas from a
        // parallel run are spliced into it in chunk order, so the request
        // stream is bit-identical to a serial run.
        let process_chunk = |i: usize,
                             dst: Interval,
                             arena: &mut RequestArena,
                             scratch: &mut Vec<VertexId>|
         -> (ChunkAggregation, ChunkCombination) {
            let obs_a = hygcn_obs::span(hygcn_obs::Phase::Aggregation);
            let a = match &window_set {
                Some(ws) => agg_engine.process_chunk_with_windows(
                    g,
                    dst,
                    f_in,
                    include_self,
                    presample_per_chunk,
                    paths,
                    arena,
                    ws.windows(i),
                ),
                None => agg_engine.process_chunk(
                    g,
                    dst,
                    f_in,
                    include_self,
                    presample_per_chunk,
                    paths,
                    arena,
                    scratch,
                ),
            };
            drop(obs_a);
            let _obs_c = hygcn_obs::span(hygcn_obs::Phase::Combination);
            let extra_macs = if kind == ModelKind::DiffPool {
                // Pool-path MLP + the coarsening products of Eq. 8.
                dst.len() as u64 * f_in as u64 * clusters
                    + dst.len() as u64 * clusters * comb_engine.out_len()
                    + a.edges * clusters * clusters / 64 // CᵀAC tiled on the array
            } else {
                0
            };
            let c = comb_engine.process_chunk(
                dst.len() as u64,
                mode,
                i == 0 || !weights_resident,
                extra_macs,
                i as u64,
                arena,
            );
            (a, c)
        };

        let nchunks = intervals.len();
        // Window + edge requests per chunk, plus weight/output requests.
        let est_requests = window_set
            .as_ref()
            .map_or(nchunks * 4, |ws| ws.total_windows() + 3 * nchunks);
        let mut arena = RequestArena::with_capacity(est_requests);
        let mut aggs: Vec<ChunkAggregation> = Vec::with_capacity(nchunks);
        let mut combs: Vec<ChunkCombination> = Vec::with_capacity(nchunks);
        let ranges = hygcn_par::split_ranges(nchunks, hygcn_par::num_threads());
        if ranges.len() <= 1 {
            let mut scratch: Vec<VertexId> = Vec::new();
            for (i, &dst) in intervals.iter().enumerate() {
                let (a, c) = process_chunk(i, dst, &mut arena, &mut scratch);
                aggs.push(a);
                combs.push(c);
            }
        } else {
            let parts = hygcn_par::par_map_slice(&ranges, |_, &(start, end)| {
                let mut local = RequestArena::new();
                let mut scratch: Vec<VertexId> = Vec::new();
                let records: Vec<(ChunkAggregation, ChunkCombination)> = (start..end)
                    .map(|i| process_chunk(i, intervals[i], &mut local, &mut scratch))
                    .collect();
                (local, records)
            });
            for (mut local, records) in parts {
                let offset = arena.append(&mut local);
                for (a, c) in records {
                    aggs.push(a.rebased(offset));
                    combs.push(c.rebased(offset));
                }
            }
        }

        // --- Activity accounting (energy). ---
        let mut act = Activity::default();
        for a in &aggs {
            act.simd_ops += a.elem_ops;
            act.agg_buffer_traffic += a.edge_buffer_bytes + a.input_buffer_bytes;
            act.coordinator_buffer_traffic += a.agg_buffer_bytes;
            act.agg_hbm_bytes += a.summary.total_bytes();
        }
        for c in &combs {
            act.macs += c.macs;
            act.comb_buffer_traffic += c.weight_buffer_bytes + c.output_buffer_bytes;
            act.coordinator_buffer_traffic += c.agg_buffer_bytes;
            act.comb_hbm_bytes += c.summary.total_bytes();
        }

        // --- Timeline through the shared memory handler. ---
        // Steps stay sequential (step s+1's arrival cycle depends on step
        // s's merge), but within a step the per-channel machines drain
        // independently — ChannelWalk fans them out across threads for
        // fat batches and merges deterministically. Batch assembly reuses
        // two buffers across every step, so the steady state allocates
        // nothing.
        let scheduler = AccessScheduler::new(cfg.coordination);
        let mut hbm = ChannelWalk::new(cfg.hbm);
        let mut now = 0u64;
        let mut vertex_latency_weighted = 0f64;
        let mut timeline: Vec<ChunkTrace> = Vec::new();
        let mut batch: Vec<MemRequest> = Vec::new();
        let mut order_scratch: Vec<MemRequest> = Vec::new();

        match cfg.pipeline {
            PipelineMode::None => {
                // Phase-by-phase: aggregation results spill to DRAM and
                // are reloaded by the Combination Engine.
                for (i, dst) in intervals.iter().enumerate() {
                    let spill_bytes = (dst.len() * row_bytes) as u64 * paths;
                    let spill_addr = spill_base + u64::from(dst.start) * row_bytes as u64;

                    batch.clear();
                    batch.extend_from_slice(arena.slice(aggs[i].span));
                    batch.push(MemRequest::write(
                        RequestKind::OutputFeatures,
                        spill_addr,
                        spill_bytes as u32,
                    ));
                    scheduler.order_in_place(&mut batch, &mut order_scratch);
                    let mem_a = hbm.service_batch(&batch, now);
                    let step_a = aggs[i].compute_cycles.max(mem_a.saturating_sub(now));
                    if cfg.record_timeline {
                        timeline.push(ChunkTrace {
                            step: 2 * i,
                            agg_cycles: aggs[i].compute_cycles,
                            comb_cycles: 0,
                            mem_cycles: mem_a.saturating_sub(now),
                            step_cycles: step_a,
                        });
                    }
                    now += step_a;

                    batch.clear();
                    batch.extend_from_slice(arena.slice(combs[i].span));
                    batch.push(MemRequest::read(
                        RequestKind::InputFeatures,
                        spill_addr,
                        spill_bytes as u32,
                    ));
                    scheduler.order_in_place(&mut batch, &mut order_scratch);
                    let mem_b = hbm.service_batch(&batch, now);
                    let step_b = combs[i].compute_cycles.max(mem_b.saturating_sub(now));
                    if cfg.record_timeline {
                        timeline.push(ChunkTrace {
                            step: 2 * i + 1,
                            agg_cycles: 0,
                            comb_cycles: combs[i].compute_cycles,
                            mem_cycles: mem_b.saturating_sub(now),
                            step_cycles: step_b,
                        });
                    }
                    now += step_b;

                    act.spill_hbm_bytes += 2 * spill_bytes;
                    vertex_latency_weighted += (step_a + step_b) as f64 * dst.len() as f64;
                }
            }
            PipelineMode::LatencyAware | PipelineMode::EnergyAware => {
                // Latency-aware: small groups combine *while the same
                // chunk's remaining vertices aggregate* (Fig. 8a), so the
                // two engines overlap within a step. Energy-aware: burst
                // mode — the Combination Engine works on chunk s-1 while
                // chunk s aggregates (Fig. 8b), one chunk behind.
                let same_chunk = cfg.pipeline == PipelineMode::LatencyAware;
                let steps = if same_chunk { nchunks } else { nchunks + 1 };
                let mut agg_step_time = vec![0u64; nchunks];
                for s in 0..steps {
                    let comb_idx = if same_chunk {
                        Some(s)
                    } else {
                        s.checked_sub(1)
                    };
                    batch.clear();
                    if s < nchunks {
                        batch.extend_from_slice(arena.slice(aggs[s].span));
                    }
                    if let Some(c) = comb_idx {
                        batch.extend_from_slice(arena.slice(combs[c].span));
                    }
                    let mem_done = if batch.is_empty() {
                        now
                    } else {
                        scheduler.order_in_place(&mut batch, &mut order_scratch);
                        hbm.service_batch(&batch, now)
                    };
                    let compute_a = if s < nchunks {
                        aggs[s].compute_cycles
                    } else {
                        0
                    };
                    let compute_b = comb_idx.map_or(0, |c| combs[c].compute_cycles);
                    let step = compute_a.max(compute_b).max(mem_done.saturating_sub(now));
                    if s < nchunks {
                        agg_step_time[s] = step;
                    }
                    if cfg.record_timeline {
                        timeline.push(ChunkTrace {
                            step: s,
                            agg_cycles: compute_a,
                            comb_cycles: compute_b,
                            mem_cycles: mem_done.saturating_sub(now),
                            step_cycles: step,
                        });
                    }
                    now += step;
                }
                for (i, dst) in intervals.iter().enumerate() {
                    let latency = match mode {
                        SystolicMode::Independent => {
                            // Vertices finish aggregating staggered through
                            // the chunk (3/4 of the step on average, since
                            // the window sweep revisits vertices), wait for
                            // their small group to assemble, and combine
                            // immediately — the Fig. 8(a) timing. Larger
                            // module groups wait longer (Fig. 18g).
                            let assembly = cfg.module_group_vertices as u64 * agg_step_time[i]
                                / dst.len().max(1) as u64;
                            agg_step_time[i] * 3 / 4 + assembly + combs[i].first_group_cycles
                        }
                        SystolicMode::Cooperative => {
                            // Burst mode: every vertex waits for the whole
                            // chunk to aggregate, then for the assembled
                            // cooperative pass — Fig. 8(b).
                            agg_step_time[i] + combs[i].compute_cycles
                        }
                    };
                    vertex_latency_weighted += latency as f64 * dst.len() as f64;
                }
            }
        }

        // --- Report. ---
        let total_rows_loaded: u64 = aggs.iter().map(|a| a.feature_rows_loaded).sum();
        let baseline_rows = n * nchunks as u64;
        let sparsity_reduction = if baseline_rows > 0 {
            1.0 - total_rows_loaded as f64 / baseline_rows as f64
        } else {
            0.0
        };
        let stats = hbm.stats();
        let cycles = now.max(1);
        let time_s = cfg.cycles_to_seconds(cycles);
        Ok(SimReport {
            cycles,
            time_s,
            agg_compute_cycles: aggs.iter().map(|a| a.compute_cycles).sum(),
            comb_compute_cycles: combs.iter().map(|c| c.compute_cycles).sum(),
            mem: stats,
            mem_channels: hbm.channel_stats(),
            bandwidth_utilization: stats
                .bandwidth_utilization(cycles, cfg.hbm.peak_bytes_per_cycle()),
            energy: EnergyBreakdown::from_activity(&act).with_static(time_s),
            avg_vertex_latency_cycles: vertex_latency_weighted / n.max(1) as f64,
            sparsity_reduction: sparsity_reduction.max(0.0),
            chunks: nchunks,
            elem_ops: act.simd_ops,
            macs: act.macs,
            timeline,
            provenance: "",
        })
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use hygcn_graph::generator::{preferential_attachment, rmat, RmatParams};

    fn graph(n: usize, f: usize) -> Graph {
        preferential_attachment(n, 4, 1)
            .unwrap()
            .with_feature_len(f)
    }

    fn sim(cfg: HyGcnConfig) -> Simulator {
        Simulator::new(cfg)
    }

    #[test]
    fn basic_run_produces_consistent_report() {
        let g = graph(512, 64);
        let m = GcnModel::new(ModelKind::Gcn, 64, 1).unwrap();
        let r = sim(HyGcnConfig::default()).simulate(&g, &m).unwrap();
        assert!(r.cycles > 0);
        assert!(r.time_s > 0.0);
        assert_eq!(r.macs, 512 * 64 * 128);
        // Directed edges + self terms, at width 64.
        assert_eq!(r.elem_ops, (g.num_edges() as u64 + 512) * 64);
        assert!(r.energy_j() > 0.0);
        assert!(r.dram_bytes() > 0);
        assert!(r.bandwidth_utilization > 0.0 && r.bandwidth_utilization <= 1.0);
    }

    #[test]
    fn feature_len_mismatch_rejected() {
        let g = graph(64, 32);
        let m = GcnModel::new(ModelKind::Gcn, 64, 1).unwrap();
        assert!(matches!(
            sim(HyGcnConfig::default()).simulate(&g, &m),
            Err(SimError::Gcn(_))
        ));
    }

    #[test]
    fn tiny_buffer_rejected() {
        let g = graph(64, 4096);
        let m = GcnModel::new(ModelKind::Gcn, 4096, 1).unwrap();
        let cfg = HyGcnConfig {
            input_buffer_bytes: 8 << 10, // half = 4 KB < 16 KB row
            ..HyGcnConfig::default()
        };
        assert!(matches!(
            sim(cfg).simulate(&g, &m),
            Err(SimError::BufferTooSmall {
                buffer: "input",
                ..
            })
        ));
    }

    #[test]
    fn pipeline_beats_no_pipeline() {
        let g = rmat(2048, 30_000, RmatParams::default(), 2)
            .unwrap()
            .with_feature_len(256);
        let m = GcnModel::new(ModelKind::Gcn, 256, 1).unwrap();
        let mut cfg = HyGcnConfig::default();
        // Force multiple chunks so the pipeline can overlap.
        cfg.aggregation_buffer_bytes = 1 << 20;
        let piped = sim(cfg.clone()).simulate(&g, &m).unwrap();
        cfg.pipeline = PipelineMode::None;
        let serial = sim(cfg).simulate(&g, &m).unwrap();
        assert!(
            piped.cycles < serial.cycles,
            "pipelined {} vs serial {}",
            piped.cycles,
            serial.cycles
        );
        // No-pipeline also pays DRAM spills.
        assert!(serial.dram_bytes() > piped.dram_bytes());
    }

    #[test]
    fn sparsity_elimination_reduces_dram() {
        let g = rmat(4096, 20_000, RmatParams::default(), 3)
            .unwrap()
            .with_feature_len(128);
        let m = GcnModel::new(ModelKind::Gcn, 128, 1).unwrap();
        let mut cfg = HyGcnConfig::default();
        cfg.aggregation_buffer_bytes = 1 << 20; // several chunks
        let with = sim(cfg.clone()).simulate(&g, &m).unwrap();
        cfg.sparsity_elimination = false;
        let without = sim(cfg).simulate(&g, &m).unwrap();
        assert!(with.dram_bytes() < without.dram_bytes());
        assert!(with.sparsity_reduction > 0.0);
        assert!(without.sparsity_reduction.abs() < 1e-9);
        assert!(with.cycles <= without.cycles);
    }

    #[test]
    fn latency_pipeline_has_lower_vertex_latency_than_energy() {
        let g = graph(4096, 128);
        let m = GcnModel::new(ModelKind::Gcn, 128, 1).unwrap();
        let mut cfg = HyGcnConfig::default();
        cfg.pipeline = PipelineMode::LatencyAware;
        let lat = sim(cfg.clone()).simulate(&g, &m).unwrap();
        cfg.pipeline = PipelineMode::EnergyAware;
        let en = sim(cfg).simulate(&g, &m).unwrap();
        assert!(
            lat.avg_vertex_latency_cycles < en.avg_vertex_latency_cycles,
            "latency {} vs energy {}",
            lat.avg_vertex_latency_cycles,
            en.avg_vertex_latency_cycles
        );
        // Energy-aware reuses weights: lower combination energy.
        assert!(en.energy.combination_j < lat.energy.combination_j);
    }

    #[test]
    fn graphsage_sampling_reduces_work() {
        // A hub-heavy graph where sampling caps degree at 25.
        let g = rmat(1024, 60_000, RmatParams::default(), 5)
            .unwrap()
            .with_feature_len(64);
        let gcn = GcnModel::new(ModelKind::Gcn, 64, 1).unwrap();
        let gsc = GcnModel::new(ModelKind::GraphSage, 64, 1).unwrap();
        let r_gcn = sim(HyGcnConfig::default()).simulate(&g, &gcn).unwrap();
        let r_gsc = sim(HyGcnConfig::default()).simulate(&g, &gsc).unwrap();
        assert!(r_gsc.elem_ops < r_gcn.elem_ops);
    }

    #[test]
    fn diffpool_does_more_work_than_gcn() {
        let g = graph(512, 64);
        let gcn = GcnModel::new(ModelKind::Gcn, 64, 1).unwrap();
        let dfp = GcnModel::new(ModelKind::DiffPool, 64, 1).unwrap();
        let r_gcn = sim(HyGcnConfig::default()).simulate(&g, &gcn).unwrap();
        let r_dfp = sim(HyGcnConfig::default()).simulate(&g, &dfp).unwrap();
        assert!(r_dfp.macs > r_gcn.macs);
        assert!(r_dfp.elem_ops > r_gcn.elem_ops);
    }

    #[test]
    fn coordination_improves_bandwidth() {
        use hygcn_mem::scheduler::CoordinationMode;
        let g = rmat(4096, 40_000, RmatParams::default(), 7)
            .unwrap()
            .with_feature_len(256);
        let m = GcnModel::new(ModelKind::Gcn, 256, 1).unwrap();
        let mut cfg = HyGcnConfig::default();
        cfg.aggregation_buffer_bytes = 1 << 20;
        let coord = sim(cfg.clone()).simulate(&g, &m).unwrap();
        cfg.coordination = CoordinationMode::Fcfs;
        cfg.hbm = hygcn_mem::HbmConfig::hbm1_uncoordinated();
        let fcfs = sim(cfg).simulate(&g, &m).unwrap();
        assert!(
            coord.cycles <= fcfs.cycles,
            "coordinated {} vs fcfs {}",
            coord.cycles,
            fcfs.cycles
        );
    }

    #[test]
    fn larger_aggregation_buffer_fewer_chunks() {
        let g = graph(8192, 256);
        let m = GcnModel::new(ModelKind::Gcn, 256, 1).unwrap();
        let mut cfg = HyGcnConfig::default();
        cfg.aggregation_buffer_bytes = 2 << 20;
        let small = sim(cfg.clone()).simulate(&g, &m).unwrap();
        cfg.aggregation_buffer_bytes = 32 << 20;
        let large = sim(cfg).simulate(&g, &m).unwrap();
        assert!(large.chunks < small.chunks);
        assert!(large.dram_bytes() <= small.dram_bytes());
    }
}
