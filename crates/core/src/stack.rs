//! Multi-layer inference: chaining `k` convolutional layers.
//!
//! GCNs stack k layers/iterations (Eq. 1); each layer consumes the
//! previous layer's output features. This module runs a stack of models
//! through the simulator, handling the feature-length transitions, and
//! also implements the `Readout` operation as the paper prescribes:
//! "an additional single vertex that connects all vertices in the graph,
//! which can be accomplished by the Aggregation engine" (§4.1).

use hygcn_gcn::model::{GcnModel, ModelKind};
use hygcn_graph::Graph;

use crate::error::SimError;
use crate::report::SimReport;
use crate::sim::Simulator;

/// Aggregate result of a multi-layer run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StackReport {
    /// Per-layer reports, in execution order.
    pub layers: Vec<SimReport>,
    /// Cycles of the final Readout, if one was executed.
    pub readout_cycles: u64,
}

impl StackReport {
    /// Total cycles across layers (layers execute back to back — the
    /// inter-engine pipeline fuses phases *within* a layer; layer `k`
    /// needs layer `k-1`'s full output).
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum::<u64>() + self.readout_cycles
    }

    /// Total time in seconds.
    pub fn total_time_s(&self) -> f64 {
        self.layers.iter().map(|l| l.time_s).sum()
    }

    /// Total energy in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.layers.iter().map(|l| l.energy_j()).sum()
    }

    /// Total DRAM traffic in bytes.
    pub fn total_dram_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.dram_bytes()).sum()
    }
}

impl Simulator {
    /// Simulates a `k`-layer stack of `kind` over `graph`: layer 1 runs at
    /// the graph's feature length, subsequent layers at the previous
    /// layer's 128-wide output. With `readout`, a final sum-Readout over
    /// all vertices is costed on the Aggregation Engine.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from any layer; `k == 0` yields an empty
    /// report.
    pub fn simulate_stack(
        &self,
        graph: &Graph,
        kind: ModelKind,
        k: usize,
        readout: bool,
    ) -> Result<StackReport, SimError> {
        let mut report = StackReport::default();
        let mut g = graph.clone();
        for layer in 0..k {
            let model = GcnModel::new(kind, g.feature_len(), 0xA11 + layer as u64)?;
            let out_len = model.out_len();
            report.layers.push(self.simulate(&g, &model)?);
            g = g.with_feature_len(out_len);
        }
        if readout && k > 0 {
            report.readout_cycles = self.readout_cycles(&g);
        }
        Ok(report)
    }

    /// Cycles for the Readout "extreme aggregation": a virtual vertex with
    /// every vertex as a neighbor, reduced on the SIMD cores, streaming
    /// the final feature matrix once from DRAM.
    pub fn readout_cycles(&self, graph: &Graph) -> u64 {
        let cfg = self.config();
        let elem_ops = graph.num_vertices() as u64 * graph.feature_len() as u64;
        let compute = elem_ops.div_ceil(cfg.simd_lanes() as u64);
        let bytes = elem_ops * 4;
        let mem = (bytes as f64 / cfg.hbm.peak_bytes_per_cycle()) as u64;
        compute.max(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HyGcnConfig;
    use hygcn_graph::generator::preferential_attachment;

    fn graph() -> Graph {
        preferential_attachment(256, 3, 1)
            .unwrap()
            .with_feature_len(96)
    }

    #[test]
    fn two_layer_stack_chains_widths() {
        let sim = Simulator::new(HyGcnConfig::default());
        let r = sim
            .simulate_stack(&graph(), ModelKind::Gcn, 2, false)
            .unwrap();
        assert_eq!(r.layers.len(), 2);
        // Layer 1 aggregates at 96 wide, layer 2 at 128 wide: MAC counts
        // differ accordingly.
        assert_eq!(r.layers[0].macs, 256 * 96 * 128);
        assert_eq!(r.layers[1].macs, 256 * 128 * 128);
        assert_eq!(r.total_cycles(), r.layers[0].cycles + r.layers[1].cycles);
    }

    #[test]
    fn readout_adds_cycles() {
        let sim = Simulator::new(HyGcnConfig::default());
        let with = sim
            .simulate_stack(&graph(), ModelKind::Gin, 1, true)
            .unwrap();
        let without = sim
            .simulate_stack(&graph(), ModelKind::Gin, 1, false)
            .unwrap();
        assert!(with.readout_cycles > 0);
        assert_eq!(without.readout_cycles, 0);
        assert!(with.total_cycles() > without.total_cycles());
    }

    #[test]
    fn empty_stack_is_empty() {
        let sim = Simulator::new(HyGcnConfig::default());
        let r = sim
            .simulate_stack(&graph(), ModelKind::Gcn, 0, true)
            .unwrap();
        assert!(r.layers.is_empty());
        assert_eq!(r.total_cycles(), 0);
        assert_eq!(r.total_energy_j(), 0.0);
    }

    #[test]
    fn readout_bounded_by_compute_and_memory() {
        let sim = Simulator::new(HyGcnConfig::default());
        let g = graph();
        let cycles = sim.readout_cycles(&g);
        let elems = g.num_vertices() as u64 * g.feature_len() as u64;
        assert!(cycles >= elems / 512);
        assert!(cycles <= elems);
    }

    #[test]
    fn stack_totals_accumulate() {
        let sim = Simulator::new(HyGcnConfig::default());
        let r = sim
            .simulate_stack(&graph(), ModelKind::Gcn, 3, false)
            .unwrap();
        assert!(r.total_time_s() > 0.0);
        assert!(r.total_energy_j() > 0.0);
        assert_eq!(
            r.total_dram_bytes(),
            r.layers.iter().map(|l| l.dram_bytes()).sum::<u64>()
        );
    }
}
