//! Shared input validation for every evaluation backend.
//!
//! The feature-shape and buffer-capacity checks used to be hand-copied
//! into `Simulator::simulate`, `Simulator::simulate_reference`, and the
//! analytical backend, and the copies had already started to drift in
//! type detail. Every backend now calls [`validate_inputs`] so the
//! accept/reject contract — and the exact error values — cannot diverge
//! (`tests/backends.rs` locks all backends to identical errors).

use hygcn_gcn::model::GcnModel;
use hygcn_graph::Graph;

use crate::config::HyGcnConfig;
use crate::error::SimError;

/// Validates that `(graph, model, cfg)` is a simulable design point.
///
/// The checks, in order (the order is part of the contract — callers and
/// tests rely on the first violated constraint being reported):
///
/// 1. the graph's feature length matches the model's input length;
/// 2. half the (ping-pong) Input Buffer holds one feature vector;
/// 3. half the (ping-pong) Aggregation Buffer holds one feature vector.
///
/// # Errors
///
/// * [`SimError::Gcn`] with `GcnError::FeatureShape` on mismatch (1);
/// * [`SimError::BufferTooSmall`] naming the offending buffer (2, 3).
pub fn validate_inputs(graph: &Graph, model: &GcnModel, cfg: &HyGcnConfig) -> Result<(), SimError> {
    let f_in = model.feature_len();
    if graph.feature_len() != f_in {
        return Err(SimError::Gcn(hygcn_gcn::GcnError::FeatureShape {
            expected: (graph.num_vertices(), f_in),
            found: (graph.num_vertices(), graph.feature_len()),
        }));
    }
    let row_bytes = f_in * 4;
    if cfg.input_buffer_bytes / 2 < row_bytes {
        return Err(SimError::BufferTooSmall {
            buffer: "input",
            needed: row_bytes,
            available: cfg.input_buffer_bytes / 2,
        });
    }
    if cfg.aggregation_buffer_bytes / 2 < row_bytes {
        return Err(SimError::BufferTooSmall {
            buffer: "aggregation",
            needed: row_bytes,
            available: cfg.aggregation_buffer_bytes / 2,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygcn_gcn::model::ModelKind;
    use hygcn_graph::generator::preferential_attachment;

    fn graph(n: usize, f: usize) -> Graph {
        preferential_attachment(n, 4, 1)
            .unwrap()
            .with_feature_len(f)
    }

    #[test]
    fn accepts_consistent_inputs() {
        let g = graph(64, 32);
        let m = GcnModel::new(ModelKind::Gcn, 32, 1).unwrap();
        assert!(validate_inputs(&g, &m, &HyGcnConfig::default()).is_ok());
    }

    #[test]
    fn feature_mismatch_reported_first() {
        // Both the shape and the buffers are wrong; the shape wins.
        let g = graph(64, 32);
        let m = GcnModel::new(ModelKind::Gcn, 4096, 1).unwrap();
        let cfg = HyGcnConfig {
            input_buffer_bytes: 16,
            ..HyGcnConfig::default()
        };
        assert!(matches!(
            validate_inputs(&g, &m, &cfg),
            Err(SimError::Gcn(_))
        ));
    }

    #[test]
    fn input_buffer_checked_before_aggregation() {
        let g = graph(64, 4096);
        let m = GcnModel::new(ModelKind::Gcn, 4096, 1).unwrap();
        let cfg = HyGcnConfig {
            input_buffer_bytes: 8 << 10,
            aggregation_buffer_bytes: 8 << 10,
            ..HyGcnConfig::default()
        };
        assert!(matches!(
            validate_inputs(&g, &m, &cfg),
            Err(SimError::BufferTooSmall {
                buffer: "input",
                needed: 16384,
                available: 4096,
            })
        ));
        // With a roomy input buffer, the aggregation check fires.
        let cfg = HyGcnConfig {
            aggregation_buffer_bytes: 8 << 10,
            ..HyGcnConfig::default()
        };
        assert!(matches!(
            validate_inputs(&g, &m, &cfg),
            Err(SimError::BufferTooSmall {
                buffer: "aggregation",
                ..
            })
        ));
    }
}
