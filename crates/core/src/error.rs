//! Simulator error type.

use std::error::Error;
use std::fmt;

use hygcn_gcn::GcnError;
use hygcn_graph::GraphError;

/// Errors produced by the accelerator simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Buffer configuration cannot hold even one feature vector.
    BufferTooSmall {
        /// Which buffer.
        buffer: &'static str,
        /// Bytes required for a single vector.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// Model/graph mismatch or functional failure.
    Gcn(GcnError),
    /// Graph-side failure.
    Graph(GraphError),
    /// A pluggable [`crate::backend::SimBackend`] failed for a reason of
    /// its own (platform model internals, external tooling, injected
    /// test faults) — the catch-all that lets third-party backends
    /// surface errors without extending this enum.
    Backend(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BufferTooSmall {
                buffer,
                needed,
                available,
            } => write!(
                f,
                "{buffer} buffer too small: one vector needs {needed} bytes, only {available} available"
            ),
            SimError::Gcn(e) => write!(f, "model error: {e}"),
            SimError::Graph(e) => write!(f, "graph error: {e}"),
            SimError::Backend(m) => write!(f, "backend error: {m}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Gcn(e) => Some(e),
            SimError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GcnError> for SimError {
    fn from(e: GcnError) -> Self {
        SimError::Gcn(e)
    }
}

impl From<GraphError> for SimError {
    fn from(e: GraphError) -> Self {
        SimError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::BufferTooSmall {
            buffer: "input",
            needed: 5732,
            available: 1024,
        };
        let s = e.to_string();
        assert!(s.contains("input"));
        assert!(s.contains("5732"));
    }

    #[test]
    fn conversions() {
        let e: SimError = GcnError::InvalidModel("x".into()).into();
        assert!(e.source().is_some());
    }
}
