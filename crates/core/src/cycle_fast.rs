//! The `cycle-fast` backend: the cycle-accurate model on a precompiled
//! event schedule and a precompiled HBM span program.
//!
//! Same physics, faster machinery. Where [`Simulator::simulate`] plans
//! every effectual window with an O(V+E) sweep per call and walks DRAM
//! by decoding every request into per-channel segment queues, this path:
//!
//! * pulls window spans from the design point's [`EventSchedule`] —
//!   backed by the graph's cached occupancy bitmaps, so repeated
//!   evaluations of one graph (a campaign, a figure grid, a benchmark
//!   loop) skip planning almost entirely;
//! * advances the HBM timeline by *replaying* a precompiled
//!   [`SpanProgram`]: the address decode (row-aligned splitting plus
//!   channel/bank/row extraction) runs once per design point, emitting
//!   a flat channel-major tuple stream that [`SpanReplayer`] services
//!   with SoA per-channel registers. Programs are cached on the graph
//!   next to the occupancy index — keyed by the canonical config, model
//!   kind, and feature length — so a warm evaluation never assembles,
//!   orders, or decodes a request batch at all.
//!
//! ## Contract: bit-identical to `cycle`
//!
//! Every [`SimReport`] field — cycles, DRAM traffic, energy,
//! `mem_channels`, timeline — equals [`Simulator::simulate`]'s output
//! exactly (`tests/backends.rs` and `tests/oracle.rs` enforce this over
//! a differential proptest corpus and the pinned figure grid). The
//! ingredients that make the equivalence exact:
//!
//! * bitmap-extracted windows have the same row spans as Algorithm 4's,
//!   and the engine derives per-chunk edge counts from CSC offsets, so
//!   the lost multiplicity is never missed;
//! * a program step's per-channel tuple run equals the staged model's
//!   per-channel segment queue, and both controller policies — in-order
//!   *and* FR-FCFS windowed row-hit promotion — act per channel over
//!   that queue (see [`hygcn_mem::spanprog`]), so replay is
//!   bit-identical to the staged drain for every controller;
//! * sampling models run natively: the runtime [`Sampler`] is
//!   deterministic in `(graph, seed, policy)`, so the sampled topology
//!   is decoded per call like [`Simulator::simulate`] does (only the
//!   graph-side program cache is skipped — the sampled graph is
//!   throwaway).
//!
//! The only remaining delegation to [`Simulator::simulate`] is an
//! invalid HBM geometry, where the staged model's constructors are the
//! authority on rejection semantics.
//!
//! [`SpanProgram`]: hygcn_mem::spanprog::SpanProgram
//! [`SpanReplayer`]: hygcn_mem::spanprog::SpanReplayer
//! [`Sampler`]: hygcn_graph::sampling::Sampler

use std::sync::Arc;

use hygcn_gcn::aggregate::SelfTerm;
use hygcn_gcn::model::{GcnModel, ModelKind, DIFFPOOL_CLUSTERS};
use hygcn_graph::sampling::Sampler;
use hygcn_graph::Graph;
use hygcn_mem::request::{MemRequest, RequestArena, RequestKind};
use hygcn_mem::scheduler::AccessScheduler;
use hygcn_mem::spanprog::{SpanProgram, SpanProgramBuilder, SpanReplayer};

use crate::backend::SimBackend;
use crate::config::{HyGcnConfig, PipelineMode};
use crate::energy::{Activity, EnergyBreakdown};
use crate::engine::aggregation::{AggregationEngine, ChunkAggregation};
use crate::engine::combination::{ChunkCombination, CombinationEngine, SystolicMode};
use crate::error::SimError;
use crate::layout::AddressLayout;
use crate::report::SimReport;
use crate::schedule::EventSchedule;
use crate::sim::Simulator;
use crate::timeline::ChunkTrace;

/// The event-schedule cycle backend (id `"cycle-fast"`). Bit-identical
/// to [`crate::backend::CycleAccurateBackend`]; prefer it when the same
/// graph is evaluated many times. Reports carry no provenance marker —
/// they *are* the golden cycle form.
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleFastBackend;

impl SimBackend for CycleFastBackend {
    fn backend_id(&self) -> &'static str {
        "cycle-fast"
    }

    fn evaluate(
        &self,
        graph: &Graph,
        model: &GcnModel,
        config: &HyGcnConfig,
    ) -> Result<SimReport, SimError> {
        hygcn_obs::observe_eval(self.backend_id(), || simulate_fast(config, graph, model))
    }
}

/// [`Simulator::simulate`] on the fast machinery; see the module docs.
///
/// # Errors
///
/// Exactly the errors of [`Simulator::simulate`].
#[allow(clippy::too_many_lines)]
pub fn simulate_fast(
    cfg: &HyGcnConfig,
    graph: &Graph,
    model: &GcnModel,
) -> Result<SimReport, SimError> {
    crate::validate::validate_inputs(graph, model, cfg)?;

    let kind = model.kind();
    let policy = cfg.sample_policy_override.unwrap_or(kind.sample_policy());
    let Some(mut replayer) = SpanReplayer::new(&cfg.hbm) else {
        // Invalid HBM geometry: the staged model's constructors are the
        // authority on rejection semantics — delegate wholesale.
        return Simulator::new(cfg.clone()).simulate(graph, model);
    };

    // --- Sampling (runs on the engine's Sampler at runtime). ---
    let sampled_storage;
    let (g, presample_edges) = if policy.is_sampling() {
        sampled_storage = Sampler::new(cfg.sample_seed).sample(graph, policy);
        (&sampled_storage, graph.num_edges() as u64)
    } else {
        (graph, 0)
    };

    let f_in = model.feature_len();
    let row_bytes = f_in * 4;
    let n = g.num_vertices() as u64;
    let dims = kind.mlp_dims(f_in);
    let layout = AddressLayout::new(n, g.num_edges() as u64, row_bytes as u64, &dims);
    let agg_engine = AggregationEngine::new(cfg, f_in, layout.feature_base, layout.edge_base);
    let comb_engine = CombinationEngine::new(cfg, &dims, layout.weight_base, layout.output_base);
    let spill_base = layout.spill_base;

    let include_self = !matches!(kind.self_term(), SelfTerm::None);
    let paths: u64 = if kind == ModelKind::DiffPool { 2 } else { 1 };
    let sched = EventSchedule::build(g, cfg, f_in);
    let intervals = sched.intervals();
    let nchunks = intervals.len();
    let presample_per_chunk = presample_edges / intervals.len().max(1) as u64;

    let mode = match cfg.pipeline {
        PipelineMode::LatencyAware => SystolicMode::Independent,
        PipelineMode::EnergyAware | PipelineMode::None => SystolicMode::Cooperative,
    };
    let weights_resident = comb_engine.weights_resident();
    let clusters = DIFFPOOL_CLUSTERS as u64;

    // --- Per-chunk engine records (serial: the records are cheap once
    // planning is precompiled, and the replay below is the long pole). ---
    let mut arena = RequestArena::with_capacity(sched.total_windows() + 3 * nchunks);
    let mut aggs: Vec<ChunkAggregation> = Vec::with_capacity(nchunks);
    let mut combs: Vec<ChunkCombination> = Vec::with_capacity(nchunks);
    for (i, &dst) in intervals.iter().enumerate() {
        let obs_a = hygcn_obs::span(hygcn_obs::Phase::Aggregation);
        let a = agg_engine.process_chunk_with_windows(
            g,
            dst,
            f_in,
            include_self,
            presample_per_chunk,
            paths,
            &mut arena,
            sched.windows(i),
        );
        drop(obs_a);
        let _obs_c = hygcn_obs::span(hygcn_obs::Phase::Combination);
        let extra_macs = if kind == ModelKind::DiffPool {
            dst.len() as u64 * f_in as u64 * clusters
                + dst.len() as u64 * clusters * comb_engine.out_len()
                + a.edges * clusters * clusters / 64
        } else {
            0
        };
        let c = comb_engine.process_chunk(
            dst.len() as u64,
            mode,
            i == 0 || !weights_resident,
            extra_macs,
            i as u64,
            &mut arena,
        );
        aggs.push(a);
        combs.push(c);
    }

    // --- Activity accounting (energy). ---
    let mut act = Activity::default();
    for a in &aggs {
        act.simd_ops += a.elem_ops;
        act.agg_buffer_traffic += a.edge_buffer_bytes + a.input_buffer_bytes;
        act.coordinator_buffer_traffic += a.agg_buffer_bytes;
        act.agg_hbm_bytes += a.summary.total_bytes();
    }
    for c in &combs {
        act.macs += c.macs;
        act.comb_buffer_traffic += c.weight_buffer_bytes + c.output_buffer_bytes;
        act.coordinator_buffer_traffic += c.agg_buffer_bytes;
        act.comb_hbm_bytes += c.summary.total_bytes();
    }

    // --- Precompiled span program: decode once, replay every call. ---
    let steps = match cfg.pipeline {
        PipelineMode::None => 2 * nchunks,
        PipelineMode::LatencyAware => nchunks,
        PipelineMode::EnergyAware => nchunks + 1,
    };
    // The stream is a pure function of (graph, config, model kind,
    // feature length); the key spells the non-graph half out in full —
    // string-compared, so distinct configs can never collide — and the
    // graph half is implicit in which graph's cache we consult. Sampled
    // topology is rebuilt per call, so it never touches the cache.
    let cache_key = (!policy.is_sampling())
        .then(|| format!("span-program-v1;{};kind={kind:?};f_in={f_in}", cfg.canon()));
    let cached = cache_key
        .as_deref()
        .and_then(|k| g.cached_plan(k))
        .and_then(|p| p.downcast::<SpanProgram>().ok())
        .filter(|p| p.matches(&cfg.hbm) && p.steps() == steps);
    let program = match cached {
        Some(p) => p,
        None => {
            let _obs = hygcn_obs::span(hygcn_obs::Phase::SpanProgramBuild);
            // Same geometry validation as SpanReplayer::new, which
            // succeeded above — but if the two ever diverge, delegate
            // rather than panic.
            let Some(mut builder) = SpanProgramBuilder::new(&cfg.hbm) else {
                return Simulator::new(cfg.clone()).simulate(graph, model);
            };
            let scheduler = AccessScheduler::new(cfg.coordination);
            let mut batch: Vec<MemRequest> = Vec::new();
            let mut order_scratch: Vec<MemRequest> = Vec::new();
            match cfg.pipeline {
                PipelineMode::None => {
                    for (i, dst) in intervals.iter().enumerate() {
                        let spill_bytes = (dst.len() * row_bytes) as u64 * paths;
                        let spill_addr = spill_base + u64::from(dst.start) * row_bytes as u64;
                        batch.clear();
                        batch.extend_from_slice(arena.slice(aggs[i].span));
                        batch.push(MemRequest::write(
                            RequestKind::OutputFeatures,
                            spill_addr,
                            spill_bytes as u32,
                        ));
                        scheduler.order_in_place(&mut batch, &mut order_scratch);
                        builder.push_step(&batch);

                        batch.clear();
                        batch.extend_from_slice(arena.slice(combs[i].span));
                        batch.push(MemRequest::read(
                            RequestKind::InputFeatures,
                            spill_addr,
                            spill_bytes as u32,
                        ));
                        scheduler.order_in_place(&mut batch, &mut order_scratch);
                        builder.push_step(&batch);
                    }
                }
                PipelineMode::LatencyAware | PipelineMode::EnergyAware => {
                    let same_chunk = cfg.pipeline == PipelineMode::LatencyAware;
                    // EnergyAware has one more step than `aggs` entries
                    // (drain step), so this cannot iterate `aggs`.
                    #[allow(clippy::needless_range_loop)]
                    for s in 0..steps {
                        let comb_idx = if same_chunk {
                            Some(s)
                        } else {
                            s.checked_sub(1)
                        };
                        batch.clear();
                        if s < nchunks {
                            batch.extend_from_slice(arena.slice(aggs[s].span));
                        }
                        if let Some(c) = comb_idx {
                            batch.extend_from_slice(arena.slice(combs[c].span));
                        }
                        if !batch.is_empty() {
                            scheduler.order_in_place(&mut batch, &mut order_scratch);
                        }
                        builder.push_step(&batch);
                    }
                }
            }
            let p = Arc::new(builder.finish());
            if let Some(k) = &cache_key {
                g.store_plan(k, Arc::clone(&p) as Arc<dyn std::any::Any + Send + Sync>);
            }
            p
        }
    };

    // --- Timeline via span-program replay. ---
    let mut now = 0u64;
    let mut vertex_latency_weighted = 0f64;
    let mut timeline: Vec<ChunkTrace> = Vec::new();

    match cfg.pipeline {
        PipelineMode::None => {
            for (i, dst) in intervals.iter().enumerate() {
                let spill_bytes = (dst.len() * row_bytes) as u64 * paths;

                let mem_a = replayer.replay_step(&program, 2 * i, now);
                let step_a = aggs[i].compute_cycles.max(mem_a.saturating_sub(now));
                if cfg.record_timeline {
                    timeline.push(ChunkTrace {
                        step: 2 * i,
                        agg_cycles: aggs[i].compute_cycles,
                        comb_cycles: 0,
                        mem_cycles: mem_a.saturating_sub(now),
                        step_cycles: step_a,
                    });
                }
                now += step_a;

                let mem_b = replayer.replay_step(&program, 2 * i + 1, now);
                let step_b = combs[i].compute_cycles.max(mem_b.saturating_sub(now));
                if cfg.record_timeline {
                    timeline.push(ChunkTrace {
                        step: 2 * i + 1,
                        agg_cycles: 0,
                        comb_cycles: combs[i].compute_cycles,
                        mem_cycles: mem_b.saturating_sub(now),
                        step_cycles: step_b,
                    });
                }
                now += step_b;

                act.spill_hbm_bytes += 2 * spill_bytes;
                vertex_latency_weighted += (step_a + step_b) as f64 * dst.len() as f64;
            }
        }
        PipelineMode::LatencyAware | PipelineMode::EnergyAware => {
            let mut agg_step_time = vec![0u64; nchunks];
            for s in 0..steps {
                let comb_idx = if cfg.pipeline == PipelineMode::LatencyAware {
                    Some(s)
                } else {
                    s.checked_sub(1)
                };
                let mem_done = replayer.replay_step(&program, s, now);
                let compute_a = if s < nchunks {
                    aggs[s].compute_cycles
                } else {
                    0
                };
                let compute_b = comb_idx
                    .filter(|&c| c < nchunks)
                    .map_or(0, |c| combs[c].compute_cycles);
                let step = compute_a.max(compute_b).max(mem_done.saturating_sub(now));
                if s < nchunks {
                    agg_step_time[s] = step;
                }
                if cfg.record_timeline {
                    timeline.push(ChunkTrace {
                        step: s,
                        agg_cycles: compute_a,
                        comb_cycles: compute_b,
                        mem_cycles: mem_done.saturating_sub(now),
                        step_cycles: step,
                    });
                }
                now += step;
            }
            for (i, dst) in intervals.iter().enumerate() {
                let latency = match mode {
                    SystolicMode::Independent => {
                        let assembly = cfg.module_group_vertices as u64 * agg_step_time[i]
                            / dst.len().max(1) as u64;
                        agg_step_time[i] * 3 / 4 + assembly + combs[i].first_group_cycles
                    }
                    SystolicMode::Cooperative => agg_step_time[i] + combs[i].compute_cycles,
                };
                vertex_latency_weighted += latency as f64 * dst.len() as f64;
            }
        }
    }

    // --- Report. ---
    let total_rows_loaded: u64 = aggs.iter().map(|a| a.feature_rows_loaded).sum();
    let baseline_rows = n * nchunks as u64;
    let sparsity_reduction = if baseline_rows > 0 {
        1.0 - total_rows_loaded as f64 / baseline_rows as f64
    } else {
        0.0
    };
    let stats = replayer.stats();
    let cycles = now.max(1);
    let time_s = cfg.cycles_to_seconds(cycles);
    Ok(SimReport {
        cycles,
        time_s,
        agg_compute_cycles: aggs.iter().map(|a| a.compute_cycles).sum(),
        comb_compute_cycles: combs.iter().map(|c| c.compute_cycles).sum(),
        mem: stats,
        mem_channels: replayer.channel_stats(),
        bandwidth_utilization: stats.bandwidth_utilization(cycles, cfg.hbm.peak_bytes_per_cycle()),
        energy: EnergyBreakdown::from_activity(&act).with_static(time_s),
        avg_vertex_latency_cycles: vertex_latency_weighted / n.max(1) as f64,
        sparsity_reduction: sparsity_reduction.max(0.0),
        chunks: nchunks,
        elem_ops: act.simd_ops,
        macs: act.macs,
        timeline,
        provenance: "",
    })
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use hygcn_graph::generator::{preferential_attachment, rmat, RmatParams};
    use hygcn_mem::hbm::ControllerPolicy;
    use hygcn_mem::scheduler::CoordinationMode;

    fn assert_identical(g: &Graph, m: &GcnModel, cfg: &HyGcnConfig, what: &str) {
        let fast = simulate_fast(cfg, g, m).unwrap();
        let slow = Simulator::new(cfg.clone()).simulate(g, m).unwrap();
        assert_eq!(fast, slow, "cycle-fast diverged from cycle: {what}");
    }

    #[test]
    fn matches_cycle_across_pipeline_modes() {
        let g = rmat(2048, 24_000, RmatParams::default(), 4)
            .unwrap()
            .with_feature_len(128);
        let m = GcnModel::new(ModelKind::Gcn, 128, 1).unwrap();
        let mut cfg = HyGcnConfig::default();
        cfg.aggregation_buffer_bytes = 1 << 20; // several chunks
        for pipeline in [
            PipelineMode::LatencyAware,
            PipelineMode::EnergyAware,
            PipelineMode::None,
        ] {
            cfg.pipeline = pipeline;
            assert_identical(&g, &m, &cfg, &format!("{pipeline:?}"));
        }
    }

    #[test]
    fn matches_cycle_with_sparsity_off_and_fcfs() {
        let g = rmat(1500, 9000, RmatParams::default(), 9)
            .unwrap()
            .with_feature_len(64);
        let m = GcnModel::new(ModelKind::Gcn, 64, 1).unwrap();
        let mut cfg = HyGcnConfig::default();
        cfg.sparsity_elimination = false;
        assert_identical(&g, &m, &cfg, "sparsity off");
        cfg.sparsity_elimination = true;
        cfg.coordination = CoordinationMode::Fcfs;
        cfg.hbm = hygcn_mem::HbmConfig::hbm1_uncoordinated();
        assert_identical(&g, &m, &cfg, "fcfs + uncoordinated mapping");
    }

    #[test]
    fn matches_cycle_with_timeline_and_models() {
        let g = preferential_attachment(1024, 4, 1)
            .unwrap()
            .with_feature_len(64);
        let mut cfg = HyGcnConfig::default();
        cfg.record_timeline = true;
        for kind in [ModelKind::Gcn, ModelKind::DiffPool, ModelKind::Gin] {
            let m = GcnModel::new(kind, 64, 1).unwrap();
            assert_identical(&g, &m, &cfg, &format!("{kind:?} with timeline"));
        }
    }

    #[test]
    fn frfcfs_runs_natively_across_windows() {
        // FR-FCFS no longer delegates: the span-program replay drives
        // the windowed row-hit promotion itself, bit-identical to the
        // staged drain for every window depth.
        let g = rmat(1024, 20_000, RmatParams::default(), 5)
            .unwrap()
            .with_feature_len(64);
        let m = GcnModel::new(ModelKind::Gcn, 64, 1).unwrap();
        for window in [1usize, 4, 16, 64] {
            let mut cfg = HyGcnConfig::default();
            cfg.aggregation_buffer_bytes = 1 << 20; // several chunks
            cfg.hbm.controller = ControllerPolicy::FrFcfs { window };
            assert_identical(&g, &m, &cfg, &format!("frfcfs window {window}"));
            // Warm pass: the cached program must replay identically.
            assert_identical(&g, &m, &cfg, &format!("frfcfs window {window} warm"));
        }
    }

    #[test]
    fn sampling_runs_natively() {
        // GraphSage samples at runtime; the fast path samples with the
        // same deterministic Sampler and replays the decoded stream.
        let g = rmat(1024, 20_000, RmatParams::default(), 5)
            .unwrap()
            .with_feature_len(64);
        let gs = GcnModel::new(ModelKind::GraphSage, 64, 1).unwrap();
        assert_identical(&g, &gs, &HyGcnConfig::default(), "sampling");
        // Sampling combined with FR-FCFS — both former delegation holes
        // at once.
        let mut cfg = HyGcnConfig::default();
        cfg.hbm.controller = ControllerPolicy::FrFcfs { window: 16 };
        assert_identical(&g, &gs, &cfg, "sampling + frfcfs");
        // And under a pipeline that exercises the spill path.
        cfg.pipeline = PipelineMode::None;
        assert_identical(&g, &gs, &cfg, "sampling + frfcfs + no pipeline");
    }

    #[test]
    fn delegates_only_on_invalid_geometry() {
        let g = preferential_attachment(256, 4, 1)
            .unwrap()
            .with_feature_len(32);
        let m = GcnModel::new(ModelKind::Gcn, 32, 1).unwrap();
        let mut cfg = HyGcnConfig::default();
        cfg.hbm.channels = 6; // not a power of two
                              // The fast machinery refuses the geometry up front ...
        assert!(SpanReplayer::new(&cfg.hbm).is_none());
        // ... and the delegated staged model stays the authority on
        // rejection semantics: both paths fail identically (here, the
        // address-map constructor's assertion).
        let fast = std::panic::catch_unwind(|| simulate_fast(&cfg, &g, &m));
        let slow = std::panic::catch_unwind(|| Simulator::new(cfg.clone()).simulate(&g, &m));
        assert_eq!(fast.is_err(), slow.is_err());
        assert!(fast.is_err());
    }

    #[test]
    fn backend_id_and_errors_match_contract() {
        assert_eq!(CycleFastBackend.backend_id(), "cycle-fast");
        let g = preferential_attachment(64, 4, 1)
            .unwrap()
            .with_feature_len(32);
        let wrong = GcnModel::new(ModelKind::Gcn, 64, 1).unwrap();
        assert!(matches!(
            CycleFastBackend.evaluate(&g, &wrong, &HyGcnConfig::default()),
            Err(SimError::Gcn(_))
        ));
    }

    #[test]
    fn repeated_evaluations_are_deterministic() {
        let g = rmat(2000, 16_000, RmatParams::default(), 6)
            .unwrap()
            .with_feature_len(128);
        let m = GcnModel::new(ModelKind::Gcn, 128, 1).unwrap();
        let cfg = HyGcnConfig::default();
        // Second call hits the graph's occupancy-index and span-program
        // caches; the report must not care.
        let first = simulate_fast(&cfg, &g, &m).unwrap();
        let second = simulate_fast(&cfg, &g, &m).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn program_cache_discriminates_configs() {
        // Alternating configs on one graph must not cross-contaminate:
        // each keyed program replays its own stream.
        let g = rmat(1200, 10_000, RmatParams::default(), 8)
            .unwrap()
            .with_feature_len(64);
        let m = GcnModel::new(ModelKind::Gcn, 64, 1).unwrap();
        let base = HyGcnConfig::default();
        let mut frfcfs = HyGcnConfig::default();
        frfcfs.hbm.controller = ControllerPolicy::FrFcfs { window: 4 };
        let mut small_buf = HyGcnConfig::default();
        small_buf.aggregation_buffer_bytes = 1 << 20;
        for cfg in [&base, &frfcfs, &small_buf, &base, &frfcfs, &small_buf] {
            assert_identical(&g, &m, cfg, "alternating configs");
        }
    }
}
