//! Simulation result record.

use hygcn_mem::MemStats;

use crate::energy::EnergyBreakdown;
use crate::timeline::ChunkTrace;

/// Everything a simulated run produced; the benchmark harness derives the
/// paper's figures from these fields.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimReport {
    /// End-to-end cycles at the accelerator clock.
    pub cycles: u64,
    /// End-to-end time in seconds.
    pub time_s: f64,
    /// Aggregation Engine busy cycles (compute only).
    pub agg_compute_cycles: u64,
    /// Combination Engine busy cycles (compute only).
    pub comb_compute_cycles: u64,
    /// Off-chip memory statistics.
    pub mem: MemStats,
    /// Achieved fraction of peak HBM bandwidth, in `[0, 1]`.
    pub bandwidth_utilization: f64,
    /// Dynamic energy per component.
    pub energy: EnergyBreakdown,
    /// Average per-vertex latency in cycles (aggregation start to
    /// combination finish — the Fig. 16(c)/18(g) metric).
    pub avg_vertex_latency_cycles: f64,
    /// Fraction of redundant source-feature row loads eliminated by
    /// window sliding+shrinking (0 when disabled).
    pub sparsity_reduction: f64,
    /// Number of destination chunks processed.
    pub chunks: usize,
    /// SIMD element operations executed.
    pub elem_ops: u64,
    /// Systolic MACs executed.
    pub macs: u64,
    /// Per-step timeline (only when the config enables recording).
    pub timeline: Vec<ChunkTrace>,
}

impl SimReport {
    /// Total dynamic energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.energy.total_j()
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.mem.total_bytes()
    }

    /// Speedup of this run over another (their time / ours).
    pub fn speedup_over_time(&self, other_time_s: f64) -> f64 {
        if self.time_s <= 0.0 {
            f64::INFINITY
        } else {
            other_time_s / self.time_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let r = SimReport {
            time_s: 0.002,
            mem: MemStats {
                bytes_read: 100,
                bytes_written: 50,
                ..Default::default()
            },
            ..Default::default()
        };
        assert_eq!(r.dram_bytes(), 150);
        assert!((r.speedup_over_time(1.0) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn zero_time_speedup_is_infinite() {
        let r = SimReport::default();
        assert!(r.speedup_over_time(1.0).is_infinite());
    }
}
