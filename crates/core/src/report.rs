//! Simulation result record.

use hygcn_mem::{ChannelStats, MemStats};

use crate::energy::EnergyBreakdown;
use crate::timeline::ChunkTrace;

/// Everything a simulated run produced; the benchmark harness derives the
/// paper's figures from these fields.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimReport {
    /// End-to-end cycles at the accelerator clock.
    pub cycles: u64,
    /// End-to-end time in seconds.
    pub time_s: f64,
    /// Aggregation Engine busy cycles (compute only).
    pub agg_compute_cycles: u64,
    /// Combination Engine busy cycles (compute only).
    pub comb_compute_cycles: u64,
    /// Off-chip memory statistics.
    pub mem: MemStats,
    /// Per-channel decomposition of the timing walk, in channel order —
    /// the observability surface the per-channel HBM model exposes. Both
    /// simulation paths fill it identically (the counters fold by
    /// summation), so it participates in the bit-identity contract.
    pub mem_channels: Vec<ChannelStats>,
    /// Achieved fraction of peak HBM bandwidth, in `[0, 1]`.
    pub bandwidth_utilization: f64,
    /// Dynamic energy per component.
    pub energy: EnergyBreakdown,
    /// Average per-vertex latency in cycles (aggregation start to
    /// combination finish — the Fig. 16(c)/18(g) metric).
    pub avg_vertex_latency_cycles: f64,
    /// Fraction of redundant source-feature row loads eliminated by
    /// window sliding+shrinking (0 when disabled).
    pub sparsity_reduction: f64,
    /// Number of destination chunks processed.
    pub chunks: usize,
    /// SIMD element operations executed.
    pub elem_ops: u64,
    /// Systolic MACs executed.
    pub macs: u64,
    /// Per-step timeline (only when the config enables recording).
    pub timeline: Vec<ChunkTrace>,
    /// Provenance marker: which [`SimBackend`] produced this report.
    /// Empty for the cycle-accurate simulator and its seed reference —
    /// the two golden paths whose serialized form predates the backend
    /// abstraction and must stay bit-identical — and a backend id
    /// (`"analytical"`, `"cpu"`, `"gpu"`) for every model that fills
    /// only a comparable subset of the fields. [`Self::to_json`] emits
    /// the marker only when non-empty, so golden snapshots of the
    /// cycle-accurate path are unaffected.
    ///
    /// [`SimBackend`]: crate::backend::SimBackend
    pub provenance: &'static str,
}

impl SimReport {
    /// Total dynamic energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.energy.total_j()
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.mem.total_bytes()
    }

    /// Speedup of this run over another (their time / ours).
    pub fn speedup_over_time(&self, other_time_s: f64) -> f64 {
        if self.time_s <= 0.0 {
            f64::INFINITY
        } else {
            other_time_s / self.time_s
        }
    }

    /// Serializes the report as stable, line-per-field JSON.
    ///
    /// Every scalar sits on its own line so snapshot mismatches diff at
    /// field granularity; floats print in shortest-round-trip form, so
    /// the text is exactly as bit-stable as the report itself. The
    /// golden-snapshot tests persist this form under `tests/golden/`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        let mut field = |key: &str, value: String| {
            out.push_str(&format!("  \"{key}\": {value},\n"));
        };
        field("cycles", self.cycles.to_string());
        field("time_s", format!("{:?}", self.time_s));
        field("agg_compute_cycles", self.agg_compute_cycles.to_string());
        field("comb_compute_cycles", self.comb_compute_cycles.to_string());
        field("mem_bytes_read", self.mem.bytes_read.to_string());
        field("mem_bytes_written", self.mem.bytes_written.to_string());
        field("mem_row_hits", self.mem.row_hits.to_string());
        field("mem_row_misses", self.mem.row_misses.to_string());
        field("mem_requests", self.mem.requests.to_string());
        field("mem_last_completion", self.mem.last_completion.to_string());
        field(
            "bandwidth_utilization",
            format!("{:?}", self.bandwidth_utilization),
        );
        field(
            "energy_aggregation_j",
            format!("{:?}", self.energy.aggregation_j),
        );
        field(
            "energy_combination_j",
            format!("{:?}", self.energy.combination_j),
        );
        field(
            "energy_coordinator_j",
            format!("{:?}", self.energy.coordinator_j),
        );
        field("energy_hbm_j", format!("{:?}", self.energy.hbm_j));
        field("energy_static_j", format!("{:?}", self.energy.static_j));
        field(
            "avg_vertex_latency_cycles",
            format!("{:?}", self.avg_vertex_latency_cycles),
        );
        field(
            "sparsity_reduction",
            format!("{:?}", self.sparsity_reduction),
        );
        field("chunks", self.chunks.to_string());
        field("elem_ops", self.elem_ops.to_string());
        field("macs", self.macs.to_string());
        field("timeline_steps", self.timeline.len().to_string());
        if !self.provenance.is_empty() {
            field("backend", format!("\"{}\"", self.provenance));
        }
        for (c, ch) in self.mem_channels.iter().enumerate() {
            field(
                &format!("channel{c}"),
                format!(
                    "[{}, {}, {}, {}, {}]",
                    ch.row_hits, ch.row_misses, ch.bursts, ch.busy_cycles, ch.last_completion
                ),
            );
        }
        field("channels", self.mem_channels.len().to_string());
        // Swap the final comma for the closing brace.
        out.truncate(out.len() - 2);
        out.push_str("\n}\n");
        out
    }

    /// The [`Self::to_json`] form compacted onto a single line — the
    /// shape the DSE campaign store appends to `campaign.jsonl` (one
    /// record per line). Derived mechanically from `to_json()` so the two
    /// forms can never disagree on content: compacting the pretty form of
    /// a report always yields its stored form bit-for-bit.
    pub fn to_json_compact(&self) -> String {
        compact_json(&self.to_json())
    }
}

/// Collapses the line-per-field `to_json()` layout (`{\n  "k": v,\n...}`)
/// onto one line by dropping newlines and the two-space indent.
pub fn compact_json(pretty: &str) -> String {
    let mut out = String::with_capacity(pretty.len());
    for line in pretty.lines() {
        let trimmed = line.trim_start();
        if !trimmed.is_empty() {
            out.push_str(trimmed);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let r = SimReport {
            time_s: 0.002,
            mem: MemStats {
                bytes_read: 100,
                bytes_written: 50,
                ..Default::default()
            },
            ..Default::default()
        };
        assert_eq!(r.dram_bytes(), 150);
        assert!((r.speedup_over_time(1.0) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn zero_time_speedup_is_infinite() {
        let r = SimReport::default();
        assert!(r.speedup_over_time(1.0).is_infinite());
    }

    #[test]
    fn json_is_line_per_field_and_stable() {
        let mut r = SimReport {
            cycles: 42,
            time_s: 4.2e-8,
            ..Default::default()
        };
        r.mem_channels.push(ChannelStats {
            row_hits: 1,
            row_misses: 2,
            bursts: 3,
            busy_cycles: 3,
            last_completion: 40,
        });
        let json = r.to_json();
        assert_eq!(json, r.to_json(), "serialization must be deterministic");
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("\n}\n"));
        assert!(json.contains("\"cycles\": 42,"));
        assert!(json.contains("\"time_s\": 4.2e-8,"));
        assert!(json.contains("\"channel0\": [1, 2, 3, 3, 40],"));
        assert!(json.contains("\"channels\": 1"));
        // One field per line: every content line carries exactly one key.
        for line in json.lines().filter(|l| l.contains(':')) {
            assert_eq!(line.matches("\": ").count(), 1, "line {line}");
        }
    }

    #[test]
    fn provenance_marker_is_emitted_only_when_set() {
        let golden = SimReport::default();
        assert!(!golden.to_json().contains("\"backend\""));
        let marked = SimReport {
            provenance: "analytical",
            ..SimReport::default()
        };
        let json = marked.to_json();
        assert!(json.contains("\"backend\": \"analytical\","));
        // The two forms differ only by the marker line.
        let without: Vec<&str> = json
            .lines()
            .filter(|l| !l.contains("\"backend\""))
            .collect();
        assert_eq!(golden.to_json().lines().collect::<Vec<_>>(), without);
    }

    #[test]
    fn compact_form_is_single_line_with_same_content() {
        let r = SimReport {
            cycles: 7,
            time_s: 1.5e-6,
            ..Default::default()
        };
        let compact = r.to_json_compact();
        assert!(!compact.contains('\n'));
        assert!(compact.starts_with('{') && compact.ends_with('}'));
        assert!(compact.contains("\"cycles\": 7,"));
        // Mechanically equal to compacting the pretty form.
        assert_eq!(compact, compact_json(&r.to_json()));
    }
}
