//! # hygcn-dse
//!
//! Design-space-exploration campaigns for the HyGCN simulator: the
//! machinery that turns the verified single-run core into a machine for
//! answering many questions at once — the paper's ablation sweeps
//! (Fig. 15), scalability studies (Fig. 18), and Table 6 design-point
//! searches, each reproduced by **one** campaign invocation.
//!
//! ## The three layers
//!
//! * [`space`] — a declarative [`space::ConfigSpace`]: named axes over
//!   [`hygcn_core::HyGcnConfig`] fields, pipeline/coordination/sparsity
//!   modes, sampling factors, models, and dataset workloads, expanded by
//!   grid enumeration (optionally thinned by seeded random sampling) into
//!   a deterministic, deduplicated list of [`space::DesignPoint`]s. Every
//!   point carries a **stable cache key** — an FNV-1a hash of the
//!   config's canonical serialization plus the workload identity — equal
//!   across processes for equal inputs and distinct for any differing
//!   axis value.
//! * [`campaign`] — the [`campaign::Campaign`] executor: builds each
//!   graph+model workload **once** and shares it across all config points
//!   touching it (on the single-CPU reference box, speed comes from reuse;
//!   where threads exist, points fan out via `hygcn_par` with results
//!   merged in deterministic order), and streams each finished point into
//!   an on-disk [`store::ResultStore`] (`campaign.jsonl`). An interrupted
//!   or re-run campaign skips completed points — re-running an unchanged
//!   campaign performs **zero** simulations.
//! * [`analysis`] — Pareto-front extraction over (cycles, energy,
//!   DRAM bytes), per-axis marginal tables, and CSV/Markdown emitters.
//! * [`search`] — strategies over a space: grid, seeded random
//!   sampling, and multi-fidelity **successive halving**, whose rungs
//!   evaluate surviving points at increasing workload fidelity with
//!   deterministic promotion and every evaluation flowing through the
//!   same cached store (halving runs are themselves resumable).
//!
//! ## Example
//!
//! ```
//! use hygcn_dse::analysis;
//! use hygcn_dse::campaign::Campaign;
//! use hygcn_dse::space::{Axis, ConfigSpace, WorkloadSpec};
//! use hygcn_gcn::model::ModelKind;
//! use hygcn_graph::datasets::DatasetKey;
//!
//! # fn main() -> Result<(), hygcn_dse::DseError> {
//! let space = ConfigSpace::new(
//!     vec![WorkloadSpec::dataset(DatasetKey::Ib, 0.1, 0x5EED)],
//!     vec![ModelKind::Gcn],
//! )
//! .with_axis(Axis::parse("aggbuf-mb", "4,16")?)
//! .with_axis(Axis::parse("sparsity", "on,off")?);
//! let report = Campaign::new(space).run()?; // in-memory, no store file
//! assert_eq!(report.points.len(), 4);
//! let front = analysis::pareto_front(&report.points);
//! assert!(!front.is_empty());
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod campaign;
pub mod search;
pub mod space;
pub mod store;
pub mod store_io;

pub use campaign::{Campaign, CampaignReport, CompletedPoint, PointOutcome};
pub use search::{
    run_search, run_search_io, run_search_with_backend, BudgetMetric, SearchOutcome, SearchStrategy,
};
pub use space::{
    Axis, AxisValue, ConfigSpace, DesignPoint, SpaceSample, WorkloadSpec, DEFAULT_BACKEND,
};
pub use store::{FsckReport, QuarantinedLine, ResultStore, SalvageReport, StoreStats};
pub use store_io::{Fault, FaultPlan, FaultyIo, RealIo, RetryPolicy, Sleeper, StoreIo};

/// Top-level error for campaign construction and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DseError {
    /// The space specification is malformed or empty (unknown axis, bad
    /// value, no workloads/models, an empty axis, a zero-point sample).
    Spec(String),
    /// A workload failed to build (dataset instantiation, edge-list I/O).
    Workload(String),
    /// The simulator rejected a design point.
    Sim(String),
    /// The result store's *contents* are unusable (parse/corruption
    /// problems with no I/O failure involved).
    Store(String),
    /// A store I/O operation failed, with the operation and path that
    /// failed — the diagnosable form every filesystem error surfaces as.
    StoreIo {
        /// The failing operation: `open`, `append`, `truncate`, or
        /// `rewrite`.
        op: &'static str,
        /// The store path the operation targeted.
        path: String,
        /// The underlying I/O error, stringified.
        error: String,
        /// Whether retrying could plausibly help (see
        /// [`store_io::is_transient`]).
        transient: bool,
    },
}

impl DseError {
    pub(crate) fn store_io(op: &'static str, path: &std::path::Path, e: &std::io::Error) -> Self {
        DseError::StoreIo {
            op,
            path: path.display().to_string(),
            error: e.to_string(),
            transient: store_io::is_transient(e),
        }
    }
}

impl std::fmt::Display for DseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DseError::Spec(m) => write!(f, "space specification: {m}"),
            DseError::Workload(m) => write!(f, "workload: {m}"),
            DseError::Sim(m) => write!(f, "simulation: {m}"),
            DseError::Store(m) => write!(f, "result store: {m}"),
            DseError::StoreIo {
                op, path, error, ..
            } => write!(f, "result store: {op} {path}: {error}"),
        }
    }
}

impl std::error::Error for DseError {}
