//! Campaign analysis: Pareto fronts, per-axis marginal tables, and
//! CSV/Markdown emitters.
//!
//! The objective space is the paper's evaluation triple — end-to-end
//! **cycles**, dynamic **energy** (J), and **DRAM traffic** (bytes) —
//! all minimized. Marginal tables answer the Fig. 15/Fig. 18 question
//! ("what does moving one axis do, averaged over everything else?") with
//! per-value geometric means, the paper's own averaging convention.
//!
//! Failed points ([`PointOutcome::Failed`]) carry no metrics: they are
//! excluded from the front, the marginals, and the CSV rows, and are
//! listed (with their errors) in a dedicated Markdown section instead.

use crate::campaign::{CampaignReport, CompletedPoint, PointOutcome};

/// Whether `a` dominates `b`: no worse on every objective, strictly
/// better on at least one.
fn dominates(a: &CompletedPoint, b: &CompletedPoint) -> bool {
    let no_worse = a.cycles <= b.cycles && a.energy_j <= b.energy_j && a.dram_bytes <= b.dram_bytes;
    let better = a.cycles < b.cycles || a.energy_j < b.energy_j || a.dram_bytes < b.dram_bytes;
    no_worse && better
}

/// Indices of the Pareto-optimal points over (cycles, energy, DRAM
/// bytes), minimizing all three, in campaign order. Duplicated objective
/// triples all survive (none strictly dominates its twin); failed points
/// never make the front.
pub fn pareto_front(points: &[PointOutcome]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            let Some(p) = points[i].done() else {
                return false;
            };
            !points
                .iter()
                .filter_map(PointOutcome::done)
                .any(|other| dominates(other, p))
        })
        .collect()
}

/// One row of a per-axis marginal table: one axis value, averaged (by
/// geometric mean) over every point carrying that value.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginalRow {
    /// Axis name (`dataset`, `model`, or a swept config axis).
    pub axis: String,
    /// The axis value label.
    pub value: String,
    /// How many points carry this value.
    pub count: usize,
    /// Geometric mean of cycles.
    pub geomean_cycles: f64,
    /// Geometric mean of energy (J).
    pub geomean_energy_j: f64,
    /// Geometric mean of DRAM bytes.
    pub geomean_dram_bytes: f64,
}

/// Per-axis marginal tables over every assignment axis (including the
/// implicit `dataset` and `model` axes), in assignment order; within an
/// axis, values appear in first-occurrence order. Failed points are
/// excluded (they have no metrics to average).
pub fn marginals(points: &[PointOutcome]) -> Vec<MarginalRow> {
    let done: Vec<&CompletedPoint> = points.iter().filter_map(PointOutcome::done).collect();
    let Some(first) = done.first() else {
        return Vec::new();
    };
    let mut rows = Vec::new();
    for (axis_i, (axis, _)) in first.point.assignment.iter().enumerate() {
        let mut values: Vec<String> = Vec::new();
        for p in &done {
            let v = &p.point.assignment[axis_i].1;
            if !values.contains(v) {
                values.push(v.clone());
            }
        }
        if values.len() < 2 && axis_i >= 2 {
            continue; // a swept axis with one value has no marginal story
        }
        for value in values {
            let members: Vec<&&CompletedPoint> = done
                .iter()
                .filter(|p| p.point.assignment[axis_i].1 == value)
                .collect();
            let n = members.len() as f64;
            let geo = |f: &dyn Fn(&CompletedPoint) -> f64| -> f64 {
                let ln_sum: f64 = members.iter().map(|p| f(p).max(1e-300).ln()).sum();
                (ln_sum / n).exp()
            };
            rows.push(MarginalRow {
                axis: axis.clone(),
                value,
                count: members.len(),
                geomean_cycles: geo(&|p| p.cycles as f64),
                geomean_energy_j: geo(&|p| p.energy_j),
                geomean_dram_bytes: geo(&|p| p.dram_bytes as f64),
            });
        }
    }
    rows
}

/// Escapes a value for a Markdown table cell: axis value labels are
/// usually plain tokens, but an edge-list workload label embeds a user
/// path, which may contain `|` (cell break) or newlines.
fn md_cell(s: &str) -> String {
    s.replace('|', "\\|").replace('\n', " ")
}

/// RFC-4180-style quoting for one CSV field (again: user paths may
/// contain commas, quotes, or newlines).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// The campaign as a Markdown document: the per-point table (with Pareto
/// markers), the Pareto front, the per-axis marginal tables — the
/// Fig. 15/Fig. 18-shaped artifact one `hygcn campaign` invocation
/// emits — and, when any evaluations failed, a section listing the
/// failed points and their errors.
pub fn to_markdown(report: &CampaignReport) -> String {
    let points = &report.points;
    let mut out = String::new();
    if points.is_empty() {
        return "(empty campaign)\n".to_string();
    }
    let front = pareto_front(points);
    let axes: Vec<&str> = points[0]
        .point()
        .assignment
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();

    if report.failed == 0 {
        out += &format!(
            "## Campaign ({} points: {} simulated, {} cached)\n\n",
            points.len(),
            report.simulated,
            report.cache_hits
        );
    } else {
        out += &format!(
            "## Campaign ({} points: {} simulated, {} cached, {} failed)\n\n",
            points.len(),
            report.simulated,
            report.cache_hits,
            report.failed
        );
    }
    out += &format!(
        "| {} | cycles | time (ms) | energy (mJ) | DRAM (MB) | pareto |\n",
        axes.join(" | ")
    );
    out += &format!("|{}|\n", vec!["---"; axes.len() + 5].join("|"));
    for (i, o) in points.iter().enumerate() {
        let Some(p) = o.done() else { continue };
        let values: Vec<String> = p.point.assignment.iter().map(|(_, v)| md_cell(v)).collect();
        out += &format!(
            "| {} | {} | {:.3} | {:.3} | {:.1} | {} |\n",
            values.join(" | "),
            p.cycles,
            p.time_s * 1e3,
            p.energy_j * 1e3,
            p.dram_bytes as f64 / 1e6,
            if front.contains(&i) { "*" } else { "" },
        );
    }

    out += &format!(
        "\n### Pareto front over (cycles, energy, DRAM) — {} of {} points\n\n",
        front.len(),
        points.len()
    );
    for &i in &front {
        let p = points[i].expect_done();
        out += &format!(
            "- `{}`: {} cycles, {:.3} mJ, {:.1} MB DRAM\n",
            p.point.label(),
            p.cycles,
            p.energy_j * 1e3,
            p.dram_bytes as f64 / 1e6
        );
    }

    if report.failed > 0 {
        out += &format!("\n### Failed points ({})\n\n", report.failed);
        for o in points {
            if let Some(error) = o.error() {
                out += &format!("- `{}`: {}\n", o.point().label(), md_cell(error));
            }
        }
    }

    let margin = marginals(points);
    if !margin.is_empty() {
        out += "\n### Per-axis marginals (geometric means)\n\n";
        out += "| axis | value | points | cycles | energy (mJ) | DRAM (MB) |\n";
        out += "|---|---|---|---|---|---|\n";
        for r in &margin {
            out += &format!(
                "| {} | {} | {} | {:.0} | {:.3} | {:.1} |\n",
                md_cell(&r.axis),
                md_cell(&r.value),
                r.count,
                r.geomean_cycles,
                r.geomean_energy_j * 1e3,
                r.geomean_dram_bytes / 1e6,
            );
        }
    }
    out
}

/// The campaign as CSV: one row per completed point, assignment columns
/// first, then metrics, the Pareto flag, and the cache key. Failed
/// points have no metrics and are omitted.
pub fn to_csv(report: &CampaignReport) -> String {
    let points = &report.points;
    let Some(first) = points.first() else {
        return String::new();
    };
    let front = pareto_front(points);
    let mut out = String::new();
    let axes: Vec<&str> = first
        .point()
        .assignment
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    out += &format!(
        "{},cycles,time_s,energy_j,dram_bytes,pareto,key\n",
        axes.join(",")
    );
    for (i, o) in points.iter().enumerate() {
        let Some(p) = o.done() else { continue };
        let values: Vec<String> = p
            .point
            .assignment
            .iter()
            .map(|(_, v)| csv_field(v))
            .collect();
        out += &format!(
            "{},{},{:?},{:?},{},{},{}\n",
            values.join(","),
            p.cycles,
            p.time_s,
            p.energy_j,
            p.dram_bytes,
            front.contains(&i),
            p.point.key_hex(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{DesignPoint, WorkloadSpec};
    use hygcn_core::HyGcnConfig;
    use hygcn_gcn::model::ModelKind;
    use hygcn_graph::datasets::DatasetKey;

    fn point(key: u64, axis_val: &str) -> DesignPoint {
        DesignPoint {
            workload: WorkloadSpec::dataset(DatasetKey::Ib, 0.1, 1),
            workload_idx: 0,
            model: ModelKind::Gcn,
            config: HyGcnConfig::default(),
            assignment: vec![
                ("dataset".into(), "IB@0.1".into()),
                ("model".into(), "GCN".into()),
                ("aggbuf-mb".into(), axis_val.into()),
            ],
            key,
            backend: "cycle".into(),
        }
    }

    fn outcome(key: u64, axis_val: &str, cycles: u64, energy_j: f64, dram: u64) -> PointOutcome {
        PointOutcome::Done(CompletedPoint {
            point: point(key, axis_val),
            cycles,
            time_s: cycles as f64 * 1e-9,
            energy_j,
            dram_bytes: dram,
            report_json: "{}".into(),
            cached: false,
        })
    }

    fn failed(key: u64, axis_val: &str, error: &str) -> PointOutcome {
        PointOutcome::Failed {
            point: point(key, axis_val),
            error: error.into(),
        }
    }

    fn report(points: Vec<PointOutcome>) -> CampaignReport {
        let n = points.len();
        let failed = points.iter().filter(|p| p.is_failed()).count();
        CampaignReport {
            simulated: n - failed,
            cache_hits: 0,
            failed,
            points,
        }
    }

    #[test]
    fn pareto_front_filters_dominated_points() {
        let pts = vec![
            outcome(1, "2", 100, 1.0, 100),  // dominated by #3
            outcome(2, "4", 90, 2.0, 100),   // front (best cycles tradeoff)
            outcome(3, "8", 100, 0.5, 90),   // front
            outcome(4, "16", 120, 3.0, 200), // dominated by everything
        ];
        assert_eq!(pareto_front(&pts), vec![1, 2]);
    }

    #[test]
    fn identical_points_all_survive() {
        let pts = vec![outcome(1, "2", 10, 1.0, 10), outcome(2, "4", 10, 1.0, 10)];
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn failed_points_never_make_the_front_or_marginals() {
        let pts = vec![
            outcome(1, "2", 100, 1.0, 100),
            failed(2, "4", "backend exploded"),
            outcome(3, "8", 200, 2.0, 200),
        ];
        // The failed point is skipped, not treated as a zero-cost winner.
        assert_eq!(pareto_front(&pts), vec![0]);
        let rows = marginals(&pts);
        assert!(rows.iter().all(|r| r.value != "4"), "{rows:?}");
    }

    #[test]
    fn marginals_geomean_per_axis_value() {
        let pts = vec![
            outcome(1, "2", 100, 1.0, 100),
            outcome(2, "2", 400, 4.0, 400),
            outcome(3, "4", 50, 0.5, 50),
        ];
        let rows = marginals(&pts);
        // dataset and model axes are single-valued but are the first two
        // (identity) axes and still reported; aggbuf-mb has two values.
        let agg: Vec<&MarginalRow> = rows.iter().filter(|r| r.axis == "aggbuf-mb").collect();
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].value, "2");
        assert_eq!(agg[0].count, 2);
        // geomean(100, 400) = 200.
        assert!((agg[0].geomean_cycles - 200.0).abs() < 1e-9);
        assert_eq!(agg[1].value, "4");
        assert!((agg[1].geomean_cycles - 50.0).abs() < 1e-9);
    }

    #[test]
    fn markdown_and_csv_have_one_row_per_point() {
        let r = report(vec![
            outcome(1, "2", 100, 1.0, 100),
            outcome(2, "4", 50, 0.5, 50),
        ]);
        let md = to_markdown(&r);
        assert!(md.contains("| dataset | model | aggbuf-mb |"));
        assert!(md.contains("### Pareto front"));
        assert!(!md.contains("failed"));
        assert_eq!(md.matches("| IB@0.1 | GCN |").count(), 2);
        let csv = to_csv(&r);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("dataset,model,aggbuf-mb,cycles"));
        assert!(csv.contains("0000000000000002"));
    }

    #[test]
    fn failed_points_get_their_own_markdown_section_and_no_csv_row() {
        let r = report(vec![
            outcome(1, "2", 100, 1.0, 100),
            failed(2, "4", "simulation: injected | failure"),
        ]);
        let md = to_markdown(&r);
        assert!(md.contains("(2 points: 1 simulated, 0 cached, 1 failed)"));
        assert!(md.contains("### Failed points (1)"));
        // The error lands escaped, under the point's label.
        assert!(md.contains("injected \\| failure"));
        let csv = to_csv(&r);
        assert_eq!(csv.lines().count(), 2, "header + the one completed row");
        // An all-failed report still renders without panicking.
        let all = report(vec![failed(1, "2", "boom")]);
        let md = to_markdown(&all);
        assert!(md.contains("### Failed points (1)"));
        assert!(md.contains("— 0 of 1 points"));
        assert_eq!(to_csv(&all).lines().count(), 1, "header only");
    }

    #[test]
    fn empty_report_emits_placeholders() {
        let r = report(vec![]);
        assert_eq!(to_markdown(&r), "(empty campaign)\n");
        assert_eq!(to_csv(&r), "");
    }

    #[test]
    fn emitters_escape_hostile_labels() {
        // An edge-list workload label carries a user path, which may
        // contain CSV/Markdown metacharacters.
        let mut p = outcome(1, "4", 100, 1.0, 100);
        p.done_mut().unwrap().point.assignment[0].1 = "edges:web,la|rge \"x\".txt".into();
        let r = report(vec![p]);
        let csv = to_csv(&r);
        let data_row = csv.lines().nth(1).unwrap();
        // RFC-4180: the whole field quoted, inner quotes doubled, the
        // unquoted columns following intact.
        assert!(data_row.starts_with("\"edges:web,la|rge \"\"x\"\".txt\",GCN,4,100,"));
        let md = to_markdown(&r);
        assert!(md.contains("| edges:web,la\\|rge \"x\".txt |"));
    }
}
