//! Declarative configuration spaces: named axes, workloads, and the
//! deterministic grid/sampled enumeration into [`DesignPoint`]s.
//!
//! An *axis* is a named list of values applied to one knob of
//! [`HyGcnConfig`] (buffer capacities, pipeline/coordination/sparsity
//! modes, sampling factor, compute geometry). A [`ConfigSpace`] is the
//! cartesian product of its axes crossed with its workloads and models;
//! [`ConfigSpace::enumerate`] expands it — in a deterministic order, with
//! duplicate configurations removed — and stamps every point with the
//! stable cache key the campaign store uses for resume.

use std::path::PathBuf;

use hygcn_core::config::{AggregationMode, HyGcnConfig, PipelineMode};
use hygcn_gcn::model::ModelKind;
use hygcn_graph::datasets::{DatasetKey, DatasetSpec};
use hygcn_graph::hashing::Fnv64;
use hygcn_graph::reorder::{reorder, Ordering};
use hygcn_graph::sampling::SamplePolicy;
use hygcn_graph::Graph;
use hygcn_mem::address::MappingScheme;
use hygcn_mem::hbm::{ControllerPolicy, HbmConfig};
use hygcn_mem::scheduler::CoordinationMode;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::DseError;

/// The axis names [`Axis::parse`] understands, in display order.
pub const AXIS_NAMES: &[&str] = &[
    "aggbuf-mb",
    "inputbuf-kb",
    "edgebuf-kb",
    "pipeline",
    "coordination",
    "sparsity",
    "factor",
    "simd-cores",
    "modules",
    "module-geom",
    "agg-mode",
    "sched",
    "remap",
    "controller",
    "channels",
    "row-bytes",
    "burst-bytes",
    "clock-ghz",
    "t-row",
];

/// One setting of one configuration knob.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisValue {
    /// Aggregation Buffer capacity in MB (Fig. 18d axis).
    AggBufMb(usize),
    /// Input Buffer capacity in KB — the window-size axis (Fig. 18e).
    InputBufKb(usize),
    /// Edge Buffer capacity in KB.
    EdgeBufKb(usize),
    /// Inter-engine pipeline mode (Fig. 16 axis).
    Pipeline(PipelineMode),
    /// Off-chip access coordination on/off (Fig. 17 axis).
    Coordination(bool),
    /// Window sliding+shrinking sparsity elimination on/off (Fig. 15).
    Sparsity(bool),
    /// Sampling factor `1/f` (Fig. 18a–c axis).
    SampleFactor(usize),
    /// SIMD core count in the Aggregation Engine.
    SimdCores(usize),
    /// Systolic module count in the Combination Engine.
    SystolicModules(usize),
    /// Full systolic geometry `modules x rows x group-vertices` at a
    /// fixed PE budget — the Fig. 18(g) granularity axis (`8x4x16` is
    /// the paper's chosen point).
    ModuleGeometry {
        /// Systolic module count.
        modules: usize,
        /// PE rows per module.
        rows: usize,
        /// Vertices per independent-mode group.
        group: usize,
    },
    /// SIMD work-distribution mode (Fig. 4's ablation).
    AggMode(AggregationMode),
    /// Scheduler half of memory coordination in isolation (priority
    /// batching without touching the address mapping).
    Sched(CoordinationMode),
    /// Mapping half of memory coordination in isolation: channel bits
    /// low (`low`, coordinated) or high (`high`, the baseline).
    Remap(MappingScheme),
    /// Memory-controller reordering policy (`inorder` or `frfcfs`, the
    /// row-hit-first rescue of the design ablation).
    Controller(ControllerPolicy),
    /// HBM channel count (memory-geometry axis; must be a power of two).
    Channels(usize),
    /// HBM row-buffer size in bytes (power of two).
    RowBytes(u64),
    /// HBM burst size in bytes (power of two; combinations with
    /// `burst-bytes > row-bytes` are rejected at enumeration).
    BurstBytes(u64),
    /// Accelerator clock in GHz (scales cycle-to-time conversion and
    /// therefore static energy; must be a positive finite float).
    ClockGhz(f64),
    /// HBM exposed row activate+precharge penalty `t_row` in cycles
    /// (timing axis; must be >= 1).
    TRow(u64),
}

impl AxisValue {
    /// Parses one value token for the named axis.
    pub fn parse(axis: &str, token: &str) -> Result<Self, DseError> {
        let int = |what: &str| -> Result<usize, DseError> {
            token
                .parse::<usize>()
                .map_err(|_| DseError::Spec(format!("axis '{axis}': '{token}' is not {what}")))
        };
        let positive = |what: &str| -> Result<usize, DseError> {
            let v = int(what)?;
            if v == 0 {
                return Err(DseError::Spec(format!("axis '{axis}': value must be >= 1")));
            }
            Ok(v)
        };
        let flag = || -> Result<bool, DseError> {
            match token {
                "on" => Ok(true),
                "off" => Ok(false),
                _ => Err(DseError::Spec(format!(
                    "axis '{axis}': '{token}' is not on|off"
                ))),
            }
        };
        let pow2 = |what: &str| -> Result<usize, DseError> {
            let v = positive(what)?;
            if !v.is_power_of_two() {
                return Err(DseError::Spec(format!(
                    "axis '{axis}': {v} is not a power of two"
                )));
            }
            Ok(v)
        };
        match axis {
            "aggbuf-mb" => Ok(AxisValue::AggBufMb(positive("an integer (MB)")?)),
            "inputbuf-kb" => Ok(AxisValue::InputBufKb(positive("an integer (KB)")?)),
            "edgebuf-kb" => Ok(AxisValue::EdgeBufKb(positive("an integer (KB)")?)),
            "pipeline" => match token {
                "latency" => Ok(AxisValue::Pipeline(PipelineMode::LatencyAware)),
                "energy" => Ok(AxisValue::Pipeline(PipelineMode::EnergyAware)),
                "none" => Ok(AxisValue::Pipeline(PipelineMode::None)),
                _ => Err(DseError::Spec(format!(
                    "axis 'pipeline': '{token}' is not latency|energy|none"
                ))),
            },
            "coordination" => Ok(AxisValue::Coordination(flag()?)),
            "sparsity" => Ok(AxisValue::Sparsity(flag()?)),
            "factor" => Ok(AxisValue::SampleFactor(positive("an integer factor")?)),
            "simd-cores" => Ok(AxisValue::SimdCores(positive("an integer")?)),
            "modules" => Ok(AxisValue::SystolicModules(positive("an integer")?)),
            "module-geom" => {
                let parts: Vec<usize> = token
                    .split('x')
                    .map(|t| t.parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| {
                        DseError::Spec(format!(
                            "axis 'module-geom': '{token}' is not MODULESxROWSxGROUP (e.g. 8x4x16)"
                        ))
                    })?;
                match parts.as_slice() {
                    [m, r, g] if *m >= 1 && *r >= 1 && *g >= 1 => Ok(AxisValue::ModuleGeometry {
                        modules: *m,
                        rows: *r,
                        group: *g,
                    }),
                    _ => Err(DseError::Spec(format!(
                        "axis 'module-geom': '{token}' is not MODULESxROWSxGROUP with all parts >= 1"
                    ))),
                }
            }
            "agg-mode" => match token {
                "disperse" => Ok(AxisValue::AggMode(AggregationMode::VertexDisperse)),
                "concentrated" => Ok(AxisValue::AggMode(AggregationMode::VertexConcentrated)),
                _ => Err(DseError::Spec(format!(
                    "axis 'agg-mode': '{token}' is not disperse|concentrated"
                ))),
            },
            "sched" => match token {
                "fcfs" => Ok(AxisValue::Sched(CoordinationMode::Fcfs)),
                "priority" => Ok(AxisValue::Sched(CoordinationMode::PriorityBatched)),
                _ => Err(DseError::Spec(format!(
                    "axis 'sched': '{token}' is not fcfs|priority"
                ))),
            },
            "remap" => match token {
                "low" => Ok(AxisValue::Remap(MappingScheme::ChannelInterleaved)),
                "high" => Ok(AxisValue::Remap(MappingScheme::RowInterleaved)),
                _ => Err(DseError::Spec(format!(
                    "axis 'remap': '{token}' is not low|high"
                ))),
            },
            "controller" => match token {
                "inorder" => Ok(AxisValue::Controller(ControllerPolicy::InOrder)),
                "frfcfs" => Ok(AxisValue::Controller(ControllerPolicy::FrFcfs {
                    window: 32,
                })),
                _ => Err(DseError::Spec(format!(
                    "axis 'controller': '{token}' is not inorder|frfcfs"
                ))),
            },
            "channels" => Ok(AxisValue::Channels(pow2("a power-of-two integer")?)),
            "row-bytes" => Ok(AxisValue::RowBytes(pow2("a power-of-two integer")? as u64)),
            "burst-bytes" => Ok(AxisValue::BurstBytes(pow2("a power-of-two integer")? as u64)),
            "clock-ghz" => {
                let v = token
                    .parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite() && *v > 0.0);
                match v {
                    Some(ghz) => Ok(AxisValue::ClockGhz(ghz)),
                    None => Err(DseError::Spec(format!(
                        "axis 'clock-ghz': '{token}' is not a positive finite float (GHz)"
                    ))),
                }
            }
            "t-row" => Ok(AxisValue::TRow(positive("an integer (cycles)")? as u64)),
            _ => Err(DseError::Spec(format!(
                "unknown axis '{axis}' (known: {})",
                AXIS_NAMES.join("/")
            ))),
        }
    }

    /// The axis this value belongs to.
    pub fn axis_name(&self) -> &'static str {
        match self {
            AxisValue::AggBufMb(_) => "aggbuf-mb",
            AxisValue::InputBufKb(_) => "inputbuf-kb",
            AxisValue::EdgeBufKb(_) => "edgebuf-kb",
            AxisValue::Pipeline(_) => "pipeline",
            AxisValue::Coordination(_) => "coordination",
            AxisValue::Sparsity(_) => "sparsity",
            AxisValue::SampleFactor(_) => "factor",
            AxisValue::SimdCores(_) => "simd-cores",
            AxisValue::SystolicModules(_) => "modules",
            AxisValue::ModuleGeometry { .. } => "module-geom",
            AxisValue::AggMode(_) => "agg-mode",
            AxisValue::Sched(_) => "sched",
            AxisValue::Remap(_) => "remap",
            AxisValue::Controller(_) => "controller",
            AxisValue::Channels(_) => "channels",
            AxisValue::RowBytes(_) => "row-bytes",
            AxisValue::BurstBytes(_) => "burst-bytes",
            AxisValue::ClockGhz(_) => "clock-ghz",
            AxisValue::TRow(_) => "t-row",
        }
    }

    /// Human-readable value label (the axis tick in tables).
    pub fn label(&self) -> String {
        match self {
            AxisValue::AggBufMb(v)
            | AxisValue::InputBufKb(v)
            | AxisValue::EdgeBufKb(v)
            | AxisValue::SampleFactor(v)
            | AxisValue::SimdCores(v)
            | AxisValue::SystolicModules(v) => v.to_string(),
            AxisValue::Pipeline(PipelineMode::LatencyAware) => "latency".into(),
            AxisValue::Pipeline(PipelineMode::EnergyAware) => "energy".into(),
            AxisValue::Pipeline(PipelineMode::None) => "none".into(),
            AxisValue::Coordination(b) | AxisValue::Sparsity(b) => {
                if *b { "on" } else { "off" }.into()
            }
            AxisValue::ModuleGeometry {
                modules,
                rows,
                group,
            } => format!("{modules}x{rows}x{group}"),
            AxisValue::AggMode(AggregationMode::VertexDisperse) => "disperse".into(),
            AxisValue::AggMode(AggregationMode::VertexConcentrated) => "concentrated".into(),
            AxisValue::Sched(CoordinationMode::Fcfs) => "fcfs".into(),
            AxisValue::Sched(CoordinationMode::PriorityBatched) => "priority".into(),
            AxisValue::Remap(MappingScheme::ChannelInterleaved) => "low".into(),
            AxisValue::Remap(MappingScheme::RowInterleaved) => "high".into(),
            AxisValue::Controller(ControllerPolicy::InOrder) => "inorder".into(),
            AxisValue::Controller(ControllerPolicy::FrFcfs { .. }) => "frfcfs".into(),
            AxisValue::Channels(v) => v.to_string(),
            AxisValue::RowBytes(v) | AxisValue::BurstBytes(v) | AxisValue::TRow(v) => v.to_string(),
            AxisValue::ClockGhz(v) => format!("{v:?}"),
        }
    }

    /// Applies this setting to a configuration.
    pub fn apply(&self, cfg: &mut HyGcnConfig) {
        match *self {
            AxisValue::AggBufMb(mb) => cfg.aggregation_buffer_bytes = mb << 20,
            AxisValue::InputBufKb(kb) => cfg.input_buffer_bytes = kb << 10,
            AxisValue::EdgeBufKb(kb) => cfg.edge_buffer_bytes = kb << 10,
            AxisValue::Pipeline(p) => cfg.pipeline = p,
            AxisValue::Coordination(true) => {
                cfg.coordination = CoordinationMode::PriorityBatched;
                cfg.hbm = HbmConfig {
                    mapping: HbmConfig::hbm1().mapping,
                    ..cfg.hbm
                };
            }
            AxisValue::Coordination(false) => {
                cfg.coordination = CoordinationMode::Fcfs;
                cfg.hbm = HbmConfig {
                    mapping: HbmConfig::hbm1_uncoordinated().mapping,
                    ..cfg.hbm
                };
            }
            AxisValue::Sparsity(b) => cfg.sparsity_elimination = b,
            AxisValue::SampleFactor(f) => {
                cfg.sample_policy_override = if f <= 1 {
                    None
                } else {
                    Some(SamplePolicy::Factor(f))
                };
            }
            AxisValue::SimdCores(n) => cfg.simd_cores = n,
            AxisValue::SystolicModules(n) => cfg.systolic_modules = n,
            AxisValue::ModuleGeometry {
                modules,
                rows,
                group,
            } => {
                cfg.systolic_modules = modules;
                cfg.module_rows = rows;
                cfg.module_group_vertices = group;
            }
            AxisValue::AggMode(m) => cfg.aggregation_mode = m,
            AxisValue::Sched(m) => cfg.coordination = m,
            AxisValue::Remap(m) => cfg.hbm.mapping = m,
            AxisValue::Controller(p) => cfg.hbm.controller = p,
            AxisValue::Channels(n) => cfg.hbm.channels = n,
            AxisValue::RowBytes(b) => cfg.hbm.row_bytes = b,
            AxisValue::BurstBytes(b) => cfg.hbm.burst_bytes = b,
            AxisValue::ClockGhz(ghz) => cfg.clock_ghz = ghz,
            AxisValue::TRow(t) => cfg.hbm.t_row = t,
        }
    }
}

/// A named axis: one knob and the list of values to sweep it over.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Axis name (one of [`AXIS_NAMES`]).
    pub name: String,
    /// Values in sweep order.
    pub values: Vec<AxisValue>,
}

impl Axis {
    /// Parses an axis from its name and a comma-separated value list,
    /// e.g. `Axis::parse("aggbuf-mb", "2,4,8,16,32")`.
    pub fn parse(name: &str, values_csv: &str) -> Result<Self, DseError> {
        let values = values_csv
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(|t| AxisValue::parse(name, t))
            .collect::<Result<Vec<_>, _>>()?;
        if values.is_empty() {
            return Err(DseError::Spec(format!("axis '{name}' has no values")));
        }
        Ok(Self {
            name: name.to_string(),
            values,
        })
    }

    /// Parses a whole multi-axis specification:
    /// `"aggbuf-mb=2,4,8;sparsity=on,off"` (axes separated by `;`, values
    /// by `,`). Duplicate axis names are rejected.
    pub fn parse_spec(spec: &str) -> Result<Vec<Axis>, DseError> {
        let mut axes: Vec<Axis> = Vec::new();
        for part in spec.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, values) = part.split_once('=').ok_or_else(|| {
                DseError::Spec(format!("axis '{part}' is not of the form name=v1,v2,..."))
            })?;
            let name = name.trim();
            if axes.iter().any(|a| a.name == name) {
                return Err(DseError::Spec(format!("axis '{name}' given twice")));
            }
            axes.push(Axis::parse(name, values)?);
        }
        Ok(axes)
    }
}

/// A workload the campaign can instantiate: what graph to build and how.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// A Table 4 benchmark dataset at a scale, synthesized with a seed.
    Dataset {
        /// Dataset key.
        key: DatasetKey,
        /// Scale in `(0, 1]`.
        scale: f64,
        /// Generator seed.
        seed: u64,
    },
    /// A user-supplied edge-list file (`src dst` per line, undirected).
    EdgeList {
        /// File path.
        path: PathBuf,
        /// Feature vector length to attach.
        feature_len: usize,
    },
    /// A dataset workload relabeled by a sequence of vertex orderings —
    /// the vertex-ordering-sensitivity study (window sliding+shrinking
    /// depends on id-space locality; random relabeling destroys it, BFS
    /// relabeling restores it).
    Reordered {
        /// Dataset key.
        key: DatasetKey,
        /// Scale in `(0, 1]`.
        scale: f64,
        /// Generator seed.
        seed: u64,
        /// Relabelings applied in order after instantiation.
        orderings: Vec<Ordering>,
    },
}

/// Short token for one reorder step (the workload-label suffix).
fn ordering_tag(o: &Ordering) -> String {
    match o {
        Ordering::Degree => "deg".into(),
        Ordering::Bfs => "bfs".into(),
        Ordering::Random(s) => format!("rnd{s}"),
    }
}

impl WorkloadSpec {
    /// Convenience constructor for the dataset form.
    pub fn dataset(key: DatasetKey, scale: f64, seed: u64) -> Self {
        WorkloadSpec::Dataset { key, scale, seed }
    }

    /// Short display label, e.g. `CR@0.5` or `PB@1.0+rnd7+bfs`.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Dataset { key, scale, .. } => format!("{}@{scale:?}", key.abbrev()),
            WorkloadSpec::EdgeList { path, .. } => format!("edges:{}", path.display()),
            WorkloadSpec::Reordered {
                key,
                scale,
                orderings,
                ..
            } => {
                let tags: Vec<String> = orderings.iter().map(ordering_tag).collect();
                format!("{}@{scale:?}+{}", key.abbrev(), tags.join("+"))
            }
        }
    }

    /// Canonical identity string — the workload half of the cache key.
    ///
    /// Dataset workloads are fully determined by `(key, scale, seed)`
    /// (instantiation is deterministic), so their canon is pure. Edge-list
    /// workloads hash the **file content**, so editing the file changes
    /// the key and invalidates cached results for it.
    pub fn canon(&self) -> Result<String, DseError> {
        match self {
            WorkloadSpec::Dataset { key, scale, seed } => Ok(format!(
                "dataset={};scale={scale:?};seed={seed}",
                key.abbrev()
            )),
            WorkloadSpec::EdgeList { path, feature_len } => {
                let bytes = std::fs::read(path)
                    .map_err(|e| DseError::Workload(format!("reading {}: {e}", path.display())))?;
                let mut h = Fnv64::new();
                h.write_bytes(&bytes);
                Ok(format!(
                    "edges-fnv={:016x};feature_len={feature_len}",
                    h.finish()
                ))
            }
            WorkloadSpec::Reordered {
                key,
                scale,
                seed,
                orderings,
            } => Ok(format!(
                "dataset={};scale={scale:?};seed={seed};reorder={orderings:?}",
                key.abbrev()
            )),
        }
    }

    /// Builds the graph at full fidelity.
    pub fn build(&self) -> Result<Graph, DseError> {
        self.build_at(1.0)
    }

    /// Builds the graph at an evaluation fidelity in `(0, 1]` — the
    /// campaign executor's successive-halving hook. Dataset-backed
    /// workloads instantiate at `scale * fidelity`, so a half-fidelity
    /// rung simulates a half-scale synthesis of the same dataset.
    /// Edge-list workloads have no scale knob and always load the full
    /// file (their rung evaluations are full-cost; halving still works,
    /// it just saves nothing below fidelity 1.0).
    pub fn build_at(&self, fidelity: f64) -> Result<Graph, DseError> {
        if !(fidelity > 0.0 && fidelity <= 1.0) {
            return Err(DseError::Spec(format!(
                "fidelity {fidelity:?} outside (0, 1]"
            )));
        }
        match self {
            WorkloadSpec::Dataset { key, scale, seed } => DatasetSpec::get(*key)
                .instantiate(*scale * fidelity, *seed)
                .map_err(|e| DseError::Workload(e.to_string())),
            WorkloadSpec::EdgeList { path, feature_len } => {
                hygcn_graph::io::read_edge_list_file(path, (*feature_len).max(1), true)
                    .map_err(|e| DseError::Workload(e.to_string()))
            }
            WorkloadSpec::Reordered {
                key,
                scale,
                seed,
                orderings,
            } => {
                let mut graph = DatasetSpec::get(*key)
                    .instantiate(*scale * fidelity, *seed)
                    .map_err(|e| DseError::Workload(e.to_string()))?;
                for &o in orderings {
                    graph = reorder(&graph, o).graph;
                }
                Ok(graph)
            }
        }
    }
}

/// The stable cache key of one `(backend, config, model, workload)`
/// quadruple — an FNV-1a hash of the config's canonical serialization,
/// the model abbreviation, the workload canon, and (for every backend
/// other than the default) the backend id. This single definition is
/// shared by grid enumeration and by the successive-halving search's
/// fidelity-overridden rung points, so a rung evaluation and a plain
/// campaign that happen to describe the same quadruple always agree on
/// identity (and therefore share stored results).
///
/// The `"cycle"` backend id is deliberately **elided** from the hash:
/// every store written before the backend abstraction existed holds
/// cycle-accurate results under the legacy three-part key, and those
/// stay valid. Any other backend contributes a `;backend=<id>` segment,
/// which is what guarantees zero cross-backend cache hits — an
/// analytical screening pass can share a `campaign.jsonl` with a
/// cycle-accurate campaign without either ever serving the other's
/// results.
pub fn cache_key(
    backend: &str,
    config: &HyGcnConfig,
    model: ModelKind,
    workload_canon: &str,
) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("config=");
    h.write_str(&config.canon());
    h.write_str(";model=");
    h.write_str(model.abbrev());
    h.write_str(";workload=");
    h.write_str(workload_canon);
    if backend != DEFAULT_BACKEND {
        h.write_str(";backend=");
        h.write_str(backend);
    }
    h.finish()
}

/// The backend every space targets unless told otherwise — the
/// cycle-accurate simulator.
pub const DEFAULT_BACKEND: &str = "cycle";

/// Seeded random thinning of a grid: keep at most `max_points`, chosen by
/// a deterministic Fisher–Yates shuffle of the full enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceSample {
    /// Upper bound on surviving points (must be >= 1).
    pub max_points: usize,
    /// Shuffle seed.
    pub seed: u64,
}

/// A declarative design space: workloads x models x axis grid,
/// evaluated by one named backend.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSpace {
    /// The configuration every point starts from (axes mutate a clone).
    pub base: HyGcnConfig,
    /// Workloads to cross with the grid.
    pub workloads: Vec<WorkloadSpec>,
    /// Models to cross with the grid.
    pub models: Vec<ModelKind>,
    /// Swept axes; the first axis varies slowest in enumeration order.
    pub axes: Vec<Axis>,
    /// Optional seeded random thinning of the grid.
    pub sample: Option<SpaceSample>,
    /// The backend id every point of this space evaluates under
    /// ([`DEFAULT_BACKEND`] unless overridden). Part of every point's
    /// cache key, so spaces differing only in backend never collide in
    /// a shared store.
    pub backend: String,
}

impl ConfigSpace {
    /// A space over `workloads` x `models` with no axes yet (a single
    /// base-config point per workload/model pair).
    pub fn new(workloads: Vec<WorkloadSpec>, models: Vec<ModelKind>) -> Self {
        Self {
            base: HyGcnConfig::default(),
            workloads,
            models,
            axes: Vec::new(),
            sample: None,
            backend: DEFAULT_BACKEND.to_string(),
        }
    }

    /// Replaces the base configuration.
    pub fn with_base(mut self, base: HyGcnConfig) -> Self {
        self.base = base;
        self
    }

    /// Targets a different evaluation backend (by id). Every enumerated
    /// point is stamped and cache-keyed with it; the campaign executor
    /// refuses to run points under a backend they were not keyed for.
    pub fn with_backend_id(mut self, backend: impl Into<String>) -> Self {
        self.backend = backend.into();
        self
    }

    /// Adds one axis.
    pub fn with_axis(mut self, axis: Axis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Enables seeded random sampling down to `max_points`.
    pub fn with_sample(mut self, sample: SpaceSample) -> Self {
        self.sample = Some(sample);
        self
    }

    /// Number of grid points before deduplication/sampling.
    pub fn grid_size(&self) -> usize {
        self.workloads.len()
            * self.models.len()
            * self.axes.iter().map(|a| a.values.len()).product::<usize>()
    }

    /// Expands the space into a deterministic, deduplicated point list.
    ///
    /// Order: workload-major, then model, then the axis grid in row-major
    /// order (first axis slowest). Two grid cells that produce the same
    /// `(config, model, workload)` — e.g. sampling factors 1 and an
    /// `All`-policy model — collapse to the first occurrence. With
    /// [`SpaceSample`] set, a deterministic shuffle keeps `max_points`
    /// of the deduplicated grid, re-sorted into enumeration order.
    ///
    /// # Errors
    ///
    /// [`DseError::Spec`] when the space is empty (no workloads, no
    /// models, an axis with no values, or a zero-point sample).
    pub fn enumerate(&self) -> Result<Vec<DesignPoint>, DseError> {
        if self.workloads.is_empty() {
            return Err(DseError::Spec("no workloads given".into()));
        }
        if self.models.is_empty() {
            return Err(DseError::Spec("no models given".into()));
        }
        for axis in &self.axes {
            if axis.values.is_empty() {
                return Err(DseError::Spec(format!(
                    "axis '{}' has no values",
                    axis.name
                )));
            }
        }
        if let Some(s) = self.sample {
            if s.max_points == 0 {
                return Err(DseError::Spec("sample of zero points".into()));
            }
        }

        // Workload canon strings are computed once (edge-list workloads
        // hash their file here).
        let workload_canons = self
            .workloads
            .iter()
            .map(WorkloadSpec::canon)
            .collect::<Result<Vec<_>, _>>()?;

        let combos = self.axes.iter().map(|a| a.values.len()).product::<usize>();
        let mut points = Vec::with_capacity(self.grid_size());
        let mut seen = std::collections::BTreeSet::new();
        for (widx, workload) in self.workloads.iter().enumerate() {
            for &model in &self.models {
                for mut cell in 0..combos {
                    // Mixed-radix decode, first axis slowest.
                    let mut config = self.base.clone();
                    let mut assignment = Vec::with_capacity(self.axes.len() + 2);
                    assignment.push(("dataset".to_string(), workload.label()));
                    assignment.push(("model".to_string(), model.abbrev().to_string()));
                    for axis in self.axes.iter().rev() {
                        let v = &axis.values[cell % axis.values.len()];
                        cell /= axis.values.len();
                        v.apply(&mut config);
                        assignment.push((axis.name.clone(), v.label()));
                    }
                    // Undo the reverse decode so labels read in axis order.
                    assignment[2..].reverse();

                    // Axes over memory-geometry knobs can combine into an
                    // impossible configuration (e.g. burst > row, which
                    // would corrupt the address decode); fail the whole
                    // enumeration fast instead of panicking mid-campaign.
                    config.validate().map_err(|e| {
                        let label: Vec<String> =
                            assignment.iter().map(|(k, v)| format!("{k}={v}")).collect();
                        DseError::Spec(format!("point {}: {e}", label.join(",")))
                    })?;

                    let key = cache_key(&self.backend, &config, model, &workload_canons[widx]);
                    if seen.insert(key) {
                        points.push(DesignPoint {
                            workload: workload.clone(),
                            workload_idx: widx,
                            model,
                            config,
                            assignment,
                            key,
                            backend: self.backend.clone(),
                        });
                    }
                }
            }
        }

        if let Some(s) = self.sample {
            if points.len() > s.max_points {
                let mut order: Vec<usize> = (0..points.len()).collect();
                order.shuffle(&mut StdRng::seed_from_u64(s.seed));
                order.truncate(s.max_points);
                order.sort_unstable();
                points = order.into_iter().map(|i| points[i].clone()).collect();
            }
        }
        Ok(points)
    }
}

/// One fully-resolved cell of a [`ConfigSpace`].
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The workload to run on.
    pub workload: WorkloadSpec,
    /// Index of the workload within the space (the campaign's sharing
    /// group: all points with one index share one built graph).
    pub workload_idx: usize,
    /// The model to run.
    pub model: ModelKind,
    /// The fully-applied configuration.
    pub config: HyGcnConfig,
    /// `(axis, value-label)` pairs — `dataset` and `model` first, then
    /// the swept axes in declaration order. Table emitters derive their
    /// columns from this.
    pub assignment: Vec<(String, String)>,
    /// Stable cache key: FNV-1a over config canon + model + workload
    /// canon (+ backend id for non-default backends). Identical across
    /// processes for equal inputs.
    pub key: u64,
    /// The backend id this point is keyed for (see [`cache_key`]).
    pub backend: String,
}

impl DesignPoint {
    /// Human-readable one-line label, e.g.
    /// `CR@1.0/GCN/aggbuf-mb=4,sparsity=off`.
    pub fn label(&self) -> String {
        let axes: Vec<String> = self.assignment[2..]
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let mut out = format!("{}/{}", self.workload.label(), self.model.abbrev());
        if !axes.is_empty() {
            out.push('/');
            out.push_str(&axes.join(","));
        }
        out
    }

    /// The cache key as the 16-hex-digit string stored on disk.
    pub fn key_hex(&self) -> String {
        format!("{:016x}", self.key)
    }

    /// This point re-targeted at an evaluation fidelity — the
    /// successive-halving rung transform. The config's `fidelity` field
    /// is overwritten, the cache key recomputed (so rung evaluations are
    /// cached independently of the full-fidelity result), and — for
    /// fidelities below 1 — a `fidelity` column appended to the
    /// assignment so rung tables are self-describing. At fidelity 1.0
    /// the result is identical to the original point.
    ///
    /// # Errors
    ///
    /// [`DseError::Spec`] for a fidelity outside `(0, 1]`;
    /// [`DseError::Workload`] if the workload canon cannot be computed
    /// (an unreadable edge-list file).
    pub fn at_fidelity(&self, fidelity: f64) -> Result<DesignPoint, DseError> {
        if !(fidelity > 0.0 && fidelity <= 1.0) {
            return Err(DseError::Spec(format!(
                "fidelity {fidelity:?} outside (0, 1]"
            )));
        }
        let mut p = self.clone();
        p.config.fidelity = fidelity;
        p.assignment.retain(|(k, _)| k != "fidelity");
        if fidelity < 1.0 {
            p.assignment
                .push(("fidelity".to_string(), format!("{fidelity:?}")));
        }
        p.key = cache_key(&p.backend, &p.config, p.model, &p.workload.canon()?);
        Ok(p)
    }

    /// This point re-targeted at another evaluation backend — the
    /// successive-halving search's analytical-prefilter transform. The
    /// cache key is recomputed (so, e.g., an analytical screening
    /// evaluation is cached independently of the cycle-accurate result
    /// for the same configuration); everything else is untouched.
    ///
    /// # Errors
    ///
    /// [`DseError::Workload`] if the workload canon cannot be computed
    /// (an unreadable edge-list file).
    pub fn with_backend(&self, backend: &str) -> Result<DesignPoint, DseError> {
        let mut p = self.clone();
        p.backend = backend.to_string();
        p.key = cache_key(backend, &p.config, p.model, &p.workload.canon()?);
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space2x2() -> ConfigSpace {
        ConfigSpace::new(
            vec![WorkloadSpec::dataset(DatasetKey::Ib, 0.1, 1)],
            vec![ModelKind::Gcn],
        )
        .with_axis(Axis::parse("aggbuf-mb", "4,16").unwrap())
        .with_axis(Axis::parse("sparsity", "on,off").unwrap())
    }

    #[test]
    fn grid_enumeration_order_and_labels() {
        let points = space2x2().enumerate().unwrap();
        assert_eq!(points.len(), 4);
        let labels: Vec<String> = points.iter().map(DesignPoint::label).collect();
        assert_eq!(
            labels,
            vec![
                "IB@0.1/GCN/aggbuf-mb=4,sparsity=on",
                "IB@0.1/GCN/aggbuf-mb=4,sparsity=off",
                "IB@0.1/GCN/aggbuf-mb=16,sparsity=on",
                "IB@0.1/GCN/aggbuf-mb=16,sparsity=off",
            ]
        );
        assert_eq!(points[0].config.aggregation_buffer_bytes, 4 << 20);
        assert!(!points[1].config.sparsity_elimination);
    }

    #[test]
    fn keys_are_distinct_and_reproducible() {
        let a = space2x2().enumerate().unwrap();
        let b = space2x2().enumerate().unwrap();
        let keys: std::collections::BTreeSet<u64> = a.iter().map(|p| p.key).collect();
        assert_eq!(keys.len(), 4, "keys must be pairwise distinct");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
        }
    }

    #[test]
    fn duplicate_configs_are_deduplicated() {
        // Factor 1 means "no override" for both listed values after
        // normalization... in fact factor=1 twice collapses to one point.
        let space = ConfigSpace::new(
            vec![WorkloadSpec::dataset(DatasetKey::Ib, 0.1, 1)],
            vec![ModelKind::Gcn],
        )
        .with_axis(Axis {
            name: "factor".into(),
            values: vec![AxisValue::SampleFactor(1), AxisValue::SampleFactor(1)],
        });
        assert_eq!(space.enumerate().unwrap().len(), 1);
    }

    #[test]
    fn empty_spaces_error_cleanly() {
        let no_workloads = ConfigSpace::new(vec![], vec![ModelKind::Gcn]);
        assert!(matches!(no_workloads.enumerate(), Err(DseError::Spec(_))));
        let no_models =
            ConfigSpace::new(vec![WorkloadSpec::dataset(DatasetKey::Ib, 0.1, 1)], vec![]);
        assert!(matches!(no_models.enumerate(), Err(DseError::Spec(_))));
        let empty_axis = space2x2().with_axis(Axis {
            name: "pipeline".into(),
            values: vec![],
        });
        assert!(matches!(empty_axis.enumerate(), Err(DseError::Spec(_))));
        let zero_sample = space2x2().with_sample(SpaceSample {
            max_points: 0,
            seed: 1,
        });
        assert!(matches!(zero_sample.enumerate(), Err(DseError::Spec(_))));
    }

    #[test]
    fn sampling_is_deterministic_and_order_preserving() {
        let full = space2x2().enumerate().unwrap();
        let sampled = space2x2()
            .with_sample(SpaceSample {
                max_points: 2,
                seed: 9,
            })
            .enumerate()
            .unwrap();
        assert_eq!(sampled.len(), 2);
        let again = space2x2()
            .with_sample(SpaceSample {
                max_points: 2,
                seed: 9,
            })
            .enumerate()
            .unwrap();
        assert_eq!(sampled, again);
        // Survivors appear in the same relative order as the full grid.
        let pos: Vec<usize> = sampled
            .iter()
            .map(|p| full.iter().position(|q| q.key == p.key).unwrap())
            .collect();
        assert!(pos.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn axis_spec_parsing() {
        let axes = Axis::parse_spec("aggbuf-mb=2,4; pipeline=latency,none").unwrap();
        assert_eq!(axes.len(), 2);
        assert_eq!(axes[0].values.len(), 2);
        assert_eq!(axes[1].values[1], AxisValue::Pipeline(PipelineMode::None));
        assert!(Axis::parse_spec("bogus=1").is_err());
        assert!(Axis::parse_spec("aggbuf-mb=2;aggbuf-mb=4").is_err());
        assert!(Axis::parse_spec("aggbuf-mb").is_err());
        assert!(Axis::parse_spec("sparsity=maybe").is_err());
        assert!(Axis::parse_spec("aggbuf-mb=0").is_err());
        assert!(Axis::parse_spec("").unwrap().is_empty());
    }

    #[test]
    fn memory_geometry_axes_fail_fast_as_spec_errors() {
        // burst-bytes > row-bytes is impossible geometry: without the
        // enumeration-time validation this combination panicked deep in
        // the address decode, mid-campaign.
        let space = ConfigSpace::new(
            vec![WorkloadSpec::dataset(DatasetKey::Ib, 0.1, 1)],
            vec![ModelKind::Gcn],
        )
        .with_axis(Axis::parse("row-bytes", "1024,2048").unwrap())
        .with_axis(Axis::parse("burst-bytes", "32,2048").unwrap());
        let err = space.enumerate().unwrap_err();
        match err {
            DseError::Spec(m) => {
                assert!(m.contains("burst"), "{m}");
                assert!(m.contains("row-bytes=1024"), "{m}");
            }
            other => panic!("expected Spec error, got {other:?}"),
        }
        // Non-power-of-two values are rejected at parse time already.
        assert!(Axis::parse("channels", "6").is_err());
        assert!(Axis::parse("burst-bytes", "48").is_err());
        // A consistent geometry sweep enumerates fine.
        let ok = ConfigSpace::new(
            vec![WorkloadSpec::dataset(DatasetKey::Ib, 0.1, 1)],
            vec![ModelKind::Gcn],
        )
        .with_axis(Axis::parse("channels", "2,4,8").unwrap())
        .with_axis(Axis::parse("burst-bytes", "32,64").unwrap());
        assert_eq!(ok.enumerate().unwrap().len(), 6);
    }

    #[test]
    fn decomposed_coordination_axes_touch_only_their_half() {
        let mut cfg = HyGcnConfig::default();
        AxisValue::parse("sched", "fcfs").unwrap().apply(&mut cfg);
        assert_eq!(cfg.coordination, CoordinationMode::Fcfs);
        assert_eq!(cfg.hbm.mapping, MappingScheme::ChannelInterleaved);
        AxisValue::parse("remap", "high").unwrap().apply(&mut cfg);
        assert_eq!(cfg.hbm.mapping, MappingScheme::RowInterleaved);
        assert_eq!(cfg.coordination, CoordinationMode::Fcfs);
        AxisValue::parse("controller", "frfcfs")
            .unwrap()
            .apply(&mut cfg);
        assert_eq!(cfg.hbm.controller, ControllerPolicy::FrFcfs { window: 32 });
    }

    #[test]
    fn module_geometry_axis_sets_all_three_knobs() {
        let mut cfg = HyGcnConfig::default();
        let v = AxisValue::parse("module-geom", "32x1x4").unwrap();
        assert_eq!(v.label(), "32x1x4");
        v.apply(&mut cfg);
        assert_eq!(
            (
                cfg.systolic_modules,
                cfg.module_rows,
                cfg.module_group_vertices
            ),
            (32, 1, 4)
        );
        assert!(AxisValue::parse("module-geom", "8x4").is_err());
        assert!(AxisValue::parse("module-geom", "8x4x0").is_err());
        assert!(AxisValue::parse("module-geom", "axbxc").is_err());
    }

    #[test]
    fn reordered_workload_has_distinct_canon_and_builds() {
        use hygcn_graph::reorder::Ordering;
        let natural = WorkloadSpec::dataset(DatasetKey::Ib, 0.1, 1);
        let shuffled = WorkloadSpec::Reordered {
            key: DatasetKey::Ib,
            scale: 0.1,
            seed: 1,
            orderings: vec![Ordering::Random(7)],
        };
        let recovered = WorkloadSpec::Reordered {
            key: DatasetKey::Ib,
            scale: 0.1,
            seed: 1,
            orderings: vec![Ordering::Random(7), Ordering::Bfs],
        };
        let canons: Vec<String> = [&natural, &shuffled, &recovered]
            .iter()
            .map(|w| w.canon().unwrap())
            .collect();
        assert_ne!(canons[0], canons[1]);
        assert_ne!(canons[1], canons[2]);
        assert_eq!(shuffled.label(), "IB@0.1+rnd7");
        assert_eq!(recovered.label(), "IB@0.1+rnd7+bfs");
        let a = natural.build().unwrap();
        let b = shuffled.build().unwrap();
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn timing_axes_apply_and_reject_bad_values() {
        let mut cfg = HyGcnConfig::default();
        let v = AxisValue::parse("clock-ghz", "1.25").unwrap();
        assert_eq!(v.label(), "1.25");
        v.apply(&mut cfg);
        assert_eq!(cfg.clock_ghz, 1.25);
        let v = AxisValue::parse("t-row", "56").unwrap();
        assert_eq!(v.label(), "56");
        v.apply(&mut cfg);
        assert_eq!(cfg.hbm.t_row, 56);
        for bad in ["0", "-1.5", "inf", "NaN", "fast"] {
            assert!(AxisValue::parse("clock-ghz", bad).is_err(), "{bad}");
        }
        for bad in ["0", "-3", "2.5", "slow"] {
            assert!(AxisValue::parse("t-row", bad).is_err(), "{bad}");
        }
        // A bad clock arriving through the *base* config (not an axis)
        // still fails at enumeration time as a spec error.
        let space = ConfigSpace::new(
            vec![WorkloadSpec::dataset(DatasetKey::Ib, 0.1, 1)],
            vec![ModelKind::Gcn],
        )
        .with_base(HyGcnConfig {
            clock_ghz: 0.0,
            ..HyGcnConfig::default()
        });
        match space.enumerate() {
            Err(DseError::Spec(m)) => assert!(m.contains("clock"), "{m}"),
            other => panic!("expected Spec error, got {other:?}"),
        }
    }

    #[test]
    fn timing_axes_enumerate_with_distinct_keys() {
        let space = ConfigSpace::new(
            vec![WorkloadSpec::dataset(DatasetKey::Ib, 0.1, 1)],
            vec![ModelKind::Gcn],
        )
        .with_axis(Axis::parse("clock-ghz", "0.8,1.0,1.2").unwrap())
        .with_axis(Axis::parse("t-row", "14,28").unwrap());
        let points = space.enumerate().unwrap();
        assert_eq!(points.len(), 6);
        let keys: std::collections::BTreeSet<u64> = points.iter().map(|p| p.key).collect();
        assert_eq!(keys.len(), 6);
        assert_eq!(points[0].label(), "IB@0.1/GCN/clock-ghz=0.8,t-row=14");
    }

    #[test]
    fn backend_participates_in_the_key_with_cycle_elided() {
        let cycle = space2x2().enumerate().unwrap();
        let analytical = space2x2()
            .with_backend_id("analytical")
            .enumerate()
            .unwrap();
        // Legacy compatibility: the default backend hashes exactly as the
        // pre-backend three-part key did.
        let cfg = &cycle[0].config;
        let legacy = {
            use hygcn_graph::hashing::Fnv64;
            let mut h = Fnv64::new();
            h.write_str("config=");
            h.write_str(&cfg.canon());
            h.write_str(";model=GCN");
            h.write_str(";workload=");
            h.write_str(&cycle[0].workload.canon().unwrap());
            h.finish()
        };
        assert_eq!(cycle[0].key, legacy);
        assert_eq!(cycle[0].backend, "cycle");
        // Every backend's keys are disjoint from every other's.
        for (c, a) in cycle.iter().zip(&analytical) {
            assert_ne!(c.key, a.key);
            assert_eq!(a.backend, "analytical");
        }
        // Retargeting is reversible and composes with fidelity.
        let back = analytical[0].with_backend("cycle").unwrap();
        assert_eq!(back.key, cycle[0].key);
        let half = analytical[0].at_fidelity(0.5).unwrap();
        assert_eq!(half.backend, "analytical");
        assert_ne!(half.key, analytical[0].key);
        assert_ne!(
            half.key,
            cycle[0].at_fidelity(0.5).unwrap().key,
            "fidelity rungs stay backend-isolated too"
        );
    }

    #[test]
    fn fidelity_retarget_changes_key_and_is_identity_at_one() {
        let points = space2x2().enumerate().unwrap();
        let p = &points[0];
        let half = p.at_fidelity(0.5).unwrap();
        assert_ne!(half.key, p.key);
        assert_eq!(half.config.fidelity, 0.5);
        assert_eq!(half.assignment.last().unwrap().0, "fidelity");
        // Re-targeting back to 1.0 restores the original identity.
        let back = half.at_fidelity(1.0).unwrap();
        assert_eq!(back.key, p.key);
        assert_eq!(back.assignment, p.assignment);
        assert!(p.at_fidelity(0.0).is_err());
        assert!(p.at_fidelity(1.5).is_err());
    }

    #[test]
    fn build_at_scales_dataset_workloads_down() {
        let w = WorkloadSpec::dataset(DatasetKey::Ib, 0.5, 1);
        let full = w.build_at(1.0).unwrap();
        let half = w.build_at(0.5).unwrap();
        assert!(half.num_vertices() < full.num_vertices());
        // And matches instantiating at the product scale directly.
        let direct = WorkloadSpec::dataset(DatasetKey::Ib, 0.25, 1)
            .build()
            .unwrap();
        assert_eq!(half.num_vertices(), direct.num_vertices());
        assert!(w.build_at(0.0).is_err());
    }

    #[test]
    fn coordination_axis_flips_mapping_and_scheduler() {
        let mut cfg = HyGcnConfig::default();
        AxisValue::Coordination(false).apply(&mut cfg);
        assert_eq!(cfg.coordination, CoordinationMode::Fcfs);
        assert_eq!(cfg.hbm, HbmConfig::hbm1_uncoordinated());
        AxisValue::Coordination(true).apply(&mut cfg);
        assert_eq!(cfg.coordination, CoordinationMode::PriorityBatched);
        assert_eq!(cfg.hbm, HbmConfig::hbm1());
    }

    #[test]
    fn every_axis_name_round_trips() {
        for &name in AXIS_NAMES {
            let token = match name {
                "pipeline" => "energy",
                "coordination" | "sparsity" => "off",
                "module-geom" => "16x2x8",
                "agg-mode" => "concentrated",
                "sched" => "fcfs",
                "remap" => "high",
                "controller" => "frfcfs",
                "row-bytes" => "4096",
                "burst-bytes" => "64",
                "clock-ghz" => "1.25",
                "t-row" => "21",
                _ => "4",
            };
            let v = AxisValue::parse(name, token).unwrap();
            assert_eq!(v.axis_name(), name);
            assert_eq!(v.label(), token);
            let mut cfg = HyGcnConfig::default();
            let before = cfg.canon();
            v.apply(&mut cfg);
            assert_ne!(before, cfg.canon(), "axis '{name}' must change the config");
        }
    }
}
