//! The campaign executor: shared workload builds, cached execution, and
//! streaming persistence.
//!
//! Execution strategy, shaped by the single-CPU reference box:
//!
//! 1. **Reuse over threads.** Points are grouped by workload; each graph
//!    is synthesized once per campaign and each `(model, feature_len)`
//!    pair is instantiated once per group, shared by reference across
//!    every config point that touches it. Building Reddit-scale graphs
//!    dwarfs a single simulation, so this is where the campaign's speed
//!    comes from.
//! 2. **Fan out where threads exist.** Within a group, missing points run
//!    through [`hygcn_par::par_map_slice`] in batches of one point per
//!    worker; results splice back in deterministic point order (the same
//!    ordered-merge discipline as the simulator's chunk pipeline), so a
//!    campaign's outputs are bit-identical at any thread count.
//! 3. **Stream completions.** Every finished batch is appended to the
//!    [`ResultStore`] before the next batch starts: a killed campaign
//!    loses at most one batch, and the re-run skips everything already
//!    stored.
//! 4. **Isolate failures.** A backend evaluation that errors (after
//!    bounded retries) or panics becomes a [`PointOutcome::Failed`] — it
//!    is *not* persisted, so a resumed campaign re-attempts exactly the
//!    failed points, and one bad point never aborts the rest of the run.
//! 5. **Substitute the fast path once it proves itself.** A `cycle`
//!    campaign that revisits a workload runs later points on
//!    `cycle-fast` — after dual-evaluating the first point of each
//!    config class (controller × sampling) on both backends and
//!    checking the reports are bit-identical. Stored results keep the
//!    `cycle` key; [`Campaign::without_fast_substitution`] opts out.

use std::path::PathBuf;
use std::sync::Arc;

use hygcn_core::backend::{core_backend, SimBackend};
use hygcn_core::SimReport;
use hygcn_gcn::model::GcnModel;
use hygcn_graph::Graph;

use crate::space::{ConfigSpace, DesignPoint};
use crate::store::{ResultStore, StoreRecord};
use crate::store_io::{default_sleeper, RetryPolicy, Sleeper, StoreIo};
use crate::DseError;

/// Seed for the shared model weights — the same constant the CLI's
/// single-run commands use, so a 1-point campaign reproduces
/// `hygcn simulate` bit-for-bit.
pub const MODEL_SEED: u64 = 0xC0DE;

/// One successfully executed (or cache-served) design point.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedPoint {
    /// The point.
    pub point: DesignPoint,
    /// Simulated cycles.
    pub cycles: u64,
    /// Simulated seconds.
    pub time_s: f64,
    /// Total dynamic energy in joules.
    pub energy_j: f64,
    /// Total DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Full report as compact single-line JSON.
    pub report_json: String,
    /// Whether the result came from the store (true) or a fresh
    /// simulation (false).
    pub cached: bool,
}

/// What became of one design point.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome {
    /// The point completed (fresh simulation or cache hit).
    Done(CompletedPoint),
    /// The backend evaluation failed — errored after bounded retries, or
    /// panicked. Failed points are never persisted, so a resumed
    /// campaign re-attempts exactly these.
    Failed {
        /// The point.
        point: DesignPoint,
        /// The terminal error (the last retry's message, or the panic
        /// payload).
        error: String,
    },
}

impl PointOutcome {
    /// The design point, completed or not.
    pub fn point(&self) -> &DesignPoint {
        match self {
            PointOutcome::Done(c) => &c.point,
            PointOutcome::Failed { point, .. } => point,
        }
    }

    /// The completed result, if the point succeeded.
    pub fn done(&self) -> Option<&CompletedPoint> {
        match self {
            PointOutcome::Done(c) => Some(c),
            PointOutcome::Failed { .. } => None,
        }
    }

    /// Mutable access to the completed result, if the point succeeded.
    pub fn done_mut(&mut self) -> Option<&mut CompletedPoint> {
        match self {
            PointOutcome::Done(c) => Some(c),
            PointOutcome::Failed { .. } => None,
        }
    }

    /// The completed result; panics (with the stored error) on a failed
    /// point — for harness code where a failure is itself a bug.
    pub fn expect_done(&self) -> &CompletedPoint {
        match self {
            PointOutcome::Done(c) => c,
            PointOutcome::Failed { point, error } => {
                // lint: allow(panic-macro) -- panicking on failure is this accessor's documented contract; error() is the fallible form
                panic!("point {} failed: {error}", point.label())
            }
        }
    }

    /// The failure message, if the point failed.
    pub fn error(&self) -> Option<&str> {
        match self {
            PointOutcome::Done(_) => None,
            PointOutcome::Failed { error, .. } => Some(error),
        }
    }

    /// Whether the point failed.
    pub fn is_failed(&self) -> bool {
        matches!(self, PointOutcome::Failed { .. })
    }
}

/// Everything a campaign run produced, in enumeration order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Per-point outcomes, ordered as [`ConfigSpace::enumerate`] listed
    /// them.
    pub points: Vec<PointOutcome>,
    /// Points simulated fresh this run.
    pub simulated: usize,
    /// Points served from the store.
    pub cache_hits: usize,
    /// Points whose evaluation failed this run (not persisted; a re-run
    /// re-attempts them).
    pub failed: usize,
}

impl CampaignReport {
    /// The completed outcomes, in campaign order (failed points skipped).
    pub fn completed(&self) -> impl Iterator<Item = &CompletedPoint> {
        self.points.iter().filter_map(PointOutcome::done)
    }
}

/// A runnable campaign: a space, the backend evaluating its points, and
/// an optional persistent store.
#[derive(Clone)]
pub struct Campaign {
    space: ConfigSpace,
    store_path: Option<PathBuf>,
    store_io: Option<Arc<dyn StoreIo>>,
    retry: RetryPolicy,
    sleeper: Option<Sleeper>,
    backend: Option<Arc<dyn SimBackend>>,
    fast_substitution: bool,
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("space", &self.space)
            .field("store_path", &self.store_path)
            .field("store_io", &self.store_io)
            .field("retry", &self.retry)
            .field("backend", &self.backend)
            .field("fast_substitution", &self.fast_substitution)
            .finish()
    }
}

impl Campaign {
    /// A campaign over `space` with no persistence (results are
    /// recomputed every run — the legacy `sweep` behavior).
    ///
    /// The evaluation backend is resolved from the space's backend id
    /// when `hygcn-core` provides it (`cycle`, `seed`, `analytical`);
    /// other ids (the platform backends of `hygcn-baseline`, which this
    /// crate cannot depend on) must be supplied via
    /// [`Self::with_backend`] before running.
    pub fn new(space: ConfigSpace) -> Self {
        let backend = core_backend(&space.backend);
        Self {
            space,
            store_path: None,
            store_io: None,
            retry: RetryPolicy::default(),
            sleeper: None,
            backend,
            fast_substitution: true,
        }
    }

    /// Disables the transparent `cycle-fast` substitution (see
    /// [`Self::run_points`]): every `cycle`-keyed point runs on the
    /// staged simulator, full stop. The CLI's `--no-fast-substitution`
    /// flag lands here.
    pub fn without_fast_substitution(mut self) -> Self {
        self.fast_substitution = false;
        self
    }

    /// Persists results to (and resumes from) `path`.
    pub fn with_store(mut self, path: impl Into<PathBuf>) -> Self {
        self.store_path = Some(path.into());
        self
    }

    /// Routes all store file traffic through `io` — the fault-injection
    /// hook ([`crate::store_io::FaultyIo`]); production runs keep the
    /// default [`crate::store_io::RealIo`].
    pub fn with_store_io(mut self, io: Arc<dyn StoreIo>) -> Self {
        self.store_io = Some(io);
        self
    }

    /// Sets the bounded retry-with-backoff policy shared by store
    /// appends and backend evaluations.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces how retry backoff delays are executed (tests inject a
    /// recorder so retries consume no wall-clock time).
    pub fn with_sleeper(mut self, sleeper: Sleeper) -> Self {
        self.sleeper = Some(sleeper);
        self
    }

    /// Supplies the evaluation backend object. The space's backend id is
    /// synced to it, so points enumerated by [`Self::run`] are keyed for
    /// exactly the backend that will evaluate them.
    pub fn with_backend(mut self, backend: Arc<dyn SimBackend>) -> Self {
        self.space.backend = backend.backend_id().to_string();
        self.backend = Some(backend);
        self
    }

    /// The space this campaign runs.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// The resolved backend, or a spec error naming the missing id.
    fn backend(&self) -> Result<&Arc<dyn SimBackend>, DseError> {
        self.backend.as_ref().ok_or_else(|| {
            DseError::Spec(format!(
                "backend '{}' is not provided by hygcn-core; supply it with \
                 Campaign::with_backend (hygcn_baseline::backend::resolve knows \
                 the full vocabulary)",
                self.space.backend
            ))
        })
    }

    /// Enumerates the space and runs every point not already in the
    /// store, streaming completions to disk.
    ///
    /// # Errors
    ///
    /// * [`DseError::Spec`] for an empty space.
    /// * [`DseError::Workload`] when a graph fails to build.
    /// * [`DseError::Sim`] when a model fails to instantiate.
    /// * [`DseError::StoreIo`] for store I/O problems (already-completed
    ///   points stay persisted, so a fixed re-run resumes).
    ///
    /// A backend evaluation that errors or panics is **not** an error:
    /// the campaign completes and the report carries the point as
    /// [`PointOutcome::Failed`].
    pub fn run(&self) -> Result<CampaignReport, DseError> {
        let points = self.space.enumerate()?;
        self.run_points(&points)
    }

    /// Runs an explicit point list through the executor — the hook the
    /// successive-halving search uses to evaluate each rung's survivors
    /// (with per-rung fidelity overrides already stamped on the points).
    ///
    /// Workload sharing groups by `(workload_idx, config.fidelity)`:
    /// every group builds its graph once via
    /// [`WorkloadSpec::build_at`], so a half-fidelity rung shares one
    /// half-scale graph across its survivors, and mixed-fidelity lists
    /// never leak a graph across fidelities. Outcomes return in input
    /// order; completions stream to the store exactly as in [`Self::run`].
    ///
    /// # Errors
    ///
    /// As [`Self::run`], minus the enumeration errors; additionally
    /// [`DseError::Spec`] when a point is keyed for a different backend
    /// than this campaign evaluates with (the guard that makes serving a
    /// cached result from the wrong backend structurally impossible).
    pub fn run_points(&self, points: &[DesignPoint]) -> Result<CampaignReport, DseError> {
        let backend = self.backend()?;
        if let Some(p) = points.iter().find(|p| p.backend != backend.backend_id()) {
            return Err(DseError::Spec(format!(
                "point {} is keyed for backend '{}' but this campaign evaluates \
                 with '{}'",
                p.label(),
                p.backend,
                backend.backend_id()
            )));
        }
        let sleeper = self.sleeper.clone().unwrap_or_else(default_sleeper);
        let mut store = match &self.store_path {
            Some(p) => ResultStore::open_with(
                p,
                self.store_io
                    .clone()
                    .unwrap_or_else(|| Arc::new(crate::store_io::RealIo)),
                self.retry,
                sleeper.clone(),
            )?,
            None => ResultStore::in_memory(),
        };

        // Which points were already done before this run started.
        let preexisting: Vec<bool> = points.iter().map(|p| store.get(p.key).is_some()).collect();
        let hits = preexisting.iter().filter(|&&c| c).count() as u64;
        hygcn_obs::count(hygcn_obs::Counter::PointsTotal, points.len() as u64);
        hygcn_obs::count(hygcn_obs::Counter::CacheHits, hits);
        hygcn_obs::count(hygcn_obs::Counter::PointsCached, hits);
        hygcn_obs::count(hygcn_obs::Counter::CacheMisses, points.len() as u64 - hits);

        // Group the missing points by (workload, fidelity), preserving
        // point order within each group (the pair is the sharing handle:
        // one built graph per group).
        let mut groups: Vec<((usize, u64), Vec<usize>)> = Vec::new();
        for (i, p) in points.iter().enumerate() {
            if preexisting[i] {
                continue;
            }
            let handle = (p.workload_idx, p.config.fidelity.to_bits());
            match groups.iter_mut().find(|(h, _)| *h == handle) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((handle, vec![i])),
            }
        }

        let mut simulated = 0usize;
        let mut failures: std::collections::BTreeMap<usize, String> =
            std::collections::BTreeMap::new();
        for ((_, fidelity_bits), idxs) in groups {
            let workload = &points[idxs[0]].workload;
            let obs_build = hygcn_obs::span(hygcn_obs::Phase::WorkloadBuild);
            let graph = workload.build_at(f64::from_bits(fidelity_bits))?;
            let graph_hash = graph.content_hash();
            drop(obs_build);
            // One model instance per kind in this group, shared across
            // every point of the group.
            let mut models: Vec<(hygcn_gcn::model::ModelKind, GcnModel)> = Vec::new();
            for &i in &idxs {
                let kind = points[i].model;
                if !models.iter().any(|(k, _)| *k == kind) {
                    let model = GcnModel::new(kind, graph.feature_len(), MODEL_SEED)
                        .map_err(|e| DseError::Sim(e.to_string()))?;
                    models.push((kind, model));
                }
            }

            // Transparent fast substitution: when this campaign
            // evaluates with the `cycle` backend and the group revisits
            // its workload (>= 2 points share one built graph, so the
            // precompiled machinery's caches actually amortize), points
            // run on `cycle-fast` instead — but only after the
            // bit-equality contract has been *proven on this workload*
            // for the point's config class (controller policy ×
            // sampling): the first point of each class is evaluated on
            // both backends and the reports compared bit-for-bit. A
            // mismatch pins the class to the staged path — the guard
            // that makes the substitution safe by construction, not
            // merely by test coverage. Results are stored under the
            // unchanged `cycle` key, so the substitution is invisible
            // to the store, resumes, and analysis tables.
            let substitute =
                self.fast_substitution && backend.backend_id() == "cycle" && idxs.len() >= 2;
            let fast_backend = hygcn_core::CycleFastBackend;
            // (class, proven) — per group, because the proof is a
            // statement about this group's graph.
            let mut class_proofs: Vec<(String, bool)> = Vec::new();

            // Fan the group out in batches of one point per worker; the
            // ordered collect keeps results in point order, and the store
            // append after each batch is the streaming/kill-safety point.
            // Evaluations retry up to the campaign's policy; a panic is
            // caught (and never retried — the backend's state is suspect)
            // so one bad point cannot take the run down.
            let batch = hygcn_par::num_threads().max(1);
            for chunk in idxs.chunks(batch) {
                let _obs_batch = hygcn_obs::span(hygcn_obs::Phase::CampaignBatch);
                // Decide each point's evaluation mode up front (the proof
                // table cannot be mutated mid-batch): proven class →
                // fast only; refuted class → staged only; unseen class →
                // dual-evaluate and report the comparison back.
                let modes: Vec<Option<(String, Option<bool>)>> = chunk
                    .iter()
                    .map(|&i| {
                        if !substitute {
                            return None;
                        }
                        let class = config_class(&points[i]);
                        let proven = class_proofs
                            .iter()
                            .find(|(c, _)| *c == class)
                            .map(|&(_, ok)| ok);
                        Some((class, proven))
                    })
                    .collect();
                let reports: Vec<EvalOutcome> = hygcn_par::par_map_slice(chunk, |slot, &i| {
                    let p = &points[i];
                    // Prebuilt above for every kind in the group; a
                    // miss fails the point instead of the process.
                    let Some(model) = models.iter().find(|(k, _)| *k == p.model).map(|(_, m)| m)
                    else {
                        return Err(format!("{}: model not prebuilt", p.label()));
                    };
                    let eval = |b: &dyn SimBackend| -> Result<SimReport, String> {
                        let mut attempt = 0u32;
                        loop {
                            attempt += 1;
                            let run =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    b.evaluate(&graph, model, &p.config)
                                }));
                            match run {
                                Ok(Ok(report)) => return Ok(report),
                                Ok(Err(_)) if attempt < self.retry.max_attempts => {
                                    hygcn_obs::count(hygcn_obs::Counter::EvalRetries, 1);
                                    sleeper(self.retry.delay(attempt));
                                }
                                Ok(Err(e)) => return Err(format!("{}: {e}", p.label())),
                                Err(payload) => {
                                    return Err(format!(
                                        "{}: backend panicked: {}",
                                        p.label(),
                                        panic_message(payload.as_ref())
                                    ))
                                }
                            }
                        }
                    };
                    match &modes[slot] {
                        // Proven class: the fast path IS the cycle
                        // path for this class on this graph.
                        Some((_, Some(true))) => Ok((eval(&fast_backend)?, None)),
                        // Refuted class or substitution off: staged.
                        Some((_, Some(false))) | None => Ok((eval(&**backend)?, None)),
                        // Unseen class: prove (or refute) it. The
                        // staged report is authoritative either way;
                        // a fast-path error or panic simply refutes.
                        Some((class, None)) => {
                            let staged = eval(&**backend)?;
                            let fast =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    fast_backend.evaluate(&graph, model, &p.config)
                                }));
                            let matched = matches!(&fast, Ok(Ok(f)) if *f == staged);
                            Ok((staged, Some((class.clone(), matched))))
                        }
                    }
                });
                for report in reports.iter().flatten() {
                    if let (_, Some((class, matched))) = report {
                        match class_proofs.iter_mut().find(|(c, _)| c == class) {
                            // A single refutation pins the class.
                            Some((_, proven)) => *proven &= *matched,
                            None => class_proofs.push((class.clone(), *matched)),
                        }
                    }
                }
                for (&i, report) in chunk.iter().zip(reports) {
                    let report = match report {
                        Ok((r, _)) => r,
                        Err(error) => {
                            hygcn_obs::count(hygcn_obs::Counter::PointsFailed, 1);
                            failures.insert(i, error);
                            continue;
                        }
                    };
                    let p = &points[i];
                    store.append(StoreRecord {
                        key: p.key,
                        label: p.label(),
                        graph_hash,
                        cycles: report.cycles,
                        time_s: report.time_s,
                        energy_j: report.energy_j(),
                        dram_bytes: report.dram_bytes(),
                        report_json: report.to_json_compact(),
                    })?;
                    hygcn_obs::count(hygcn_obs::Counter::PointsSimulated, 1);
                    simulated += 1;
                }
            }
        }

        // Assemble outcomes in input order from the (now complete) store.
        let mut outcomes = Vec::with_capacity(points.len());
        for (i, p) in points.iter().enumerate() {
            if let Some(error) = failures.get(&i) {
                outcomes.push(PointOutcome::Failed {
                    point: p.clone(),
                    error: error.clone(),
                });
                continue;
            }
            let rec = store.get(p.key).ok_or_else(|| {
                DseError::Store(format!(
                    "point {} completed but is missing from the store",
                    p.label()
                ))
            })?;
            outcomes.push(PointOutcome::Done(CompletedPoint {
                cycles: rec.cycles,
                time_s: rec.time_s,
                energy_j: rec.energy_j,
                dram_bytes: rec.dram_bytes,
                report_json: rec.report_json.clone(),
                cached: preexisting[i],
                point: p.clone(),
            }));
        }
        Ok(CampaignReport {
            points: outcomes,
            simulated,
            cache_hits: preexisting.iter().filter(|&&c| c).count(),
            failed: failures.len(),
        })
    }
}

/// One evaluated point: the report, plus — when the point was
/// dual-evaluated to prove its config class — `(class, matched)`.
type EvalOutcome = Result<(SimReport, Option<(String, bool)>), String>;

/// The config class the fast-substitution proof is scoped to: the DRAM
/// controller policy (discriminant *and* window — a different reorder
/// depth is a different scheduling algorithm) crossed with whether the
/// point samples its graph at runtime. These are exactly the regimes
/// that exercise distinct code paths in the precompiled replay, so one
/// proof per class covers its classmates.
fn config_class(p: &DesignPoint) -> String {
    let sampling = p
        .config
        .sample_policy_override
        .unwrap_or_else(|| p.model.sample_policy())
        .is_sampling();
    format!("{:?}|sampling={sampling}", p.config.hbm.controller)
}

/// Renders a caught panic payload (the `&str`/`String` cases `panic!`
/// produces; anything else is labeled opaquely).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Builds the graph for a workload and hands back `(graph, model)` for
/// one kind — the sharing handle single-run callers (the `sweep` alias,
/// examples) use to avoid rebuilding per configuration.
pub fn build_workload(
    spec: &crate::space::WorkloadSpec,
    kind: hygcn_gcn::model::ModelKind,
) -> Result<(Graph, GcnModel), DseError> {
    let graph = spec.build()?;
    let model = GcnModel::new(kind, graph.feature_len(), MODEL_SEED)
        .map_err(|e| DseError::Sim(e.to_string()))?;
    Ok((graph, model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Axis, SpaceSample, WorkloadSpec};
    use hygcn_core::{AnalyticalBackend, HyGcnConfig, SimError};
    use hygcn_gcn::model::ModelKind;
    use hygcn_graph::datasets::DatasetKey;
    use std::sync::Mutex;

    fn tiny_space() -> ConfigSpace {
        ConfigSpace::new(
            vec![WorkloadSpec::dataset(DatasetKey::Ib, 0.1, 1)],
            vec![ModelKind::Gcn],
        )
        .with_axis(Axis::parse("aggbuf-mb", "4,16").unwrap())
        .with_axis(Axis::parse("sparsity", "on,off").unwrap())
    }

    #[test]
    fn in_memory_campaign_runs_every_point() {
        let report = Campaign::new(tiny_space()).run().unwrap();
        assert_eq!(report.points.len(), 4);
        assert_eq!(report.simulated, 4);
        assert_eq!(report.cache_hits, 0);
        assert_eq!(report.failed, 0);
        for p in report.completed() {
            assert!(p.cycles > 0);
            assert!(p.energy_j > 0.0);
            assert!(!p.cached);
        }
        // The sparsity on/off pair shares a workload and buffer size but
        // must diverge in the simulated report.
        let (a, b) = (
            report.points[0].expect_done(),
            report.points[1].expect_done(),
        );
        assert_eq!(a.point.assignment[3].1, "on");
        assert_eq!(b.point.assignment[3].1, "off");
        assert_ne!(a.report_json, b.report_json);
    }

    #[test]
    fn sampled_campaign_respects_max_points() {
        let report = Campaign::new(tiny_space().with_sample(SpaceSample {
            max_points: 3,
            seed: 5,
        }))
        .run()
        .unwrap();
        assert_eq!(report.points.len(), 3);
        assert_eq!(report.simulated, 3);
    }

    #[test]
    fn multi_model_group_shares_graph() {
        let space = ConfigSpace::new(
            vec![WorkloadSpec::dataset(DatasetKey::Ib, 0.05, 1)],
            vec![ModelKind::Gcn, ModelKind::Gin],
        );
        let report = Campaign::new(space).run().unwrap();
        assert_eq!(report.points.len(), 2);
        assert_ne!(
            report.points[0].expect_done().cycles,
            report.points[1].expect_done().cycles
        );
    }

    #[test]
    fn analytical_campaign_runs_and_is_cache_isolated_from_cycle() {
        let dir = std::env::temp_dir().join("hygcn-dse-backend-test");
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join("shared-backends.jsonl");
        std::fs::remove_file(&store).ok();

        // Cycle campaign fills the store...
        let cycle = Campaign::new(tiny_space())
            .with_store(&store)
            .run()
            .unwrap();
        assert_eq!((cycle.simulated, cycle.cache_hits), (4, 0));
        // ...and the analytical campaign over the SAME space and store
        // gets zero cross-backend hits.
        let analytical = Campaign::new(tiny_space().with_backend_id("analytical"))
            .with_store(&store)
            .run()
            .unwrap();
        assert_eq!((analytical.simulated, analytical.cache_hits), (4, 0));
        for (c, a) in cycle.completed().zip(analytical.completed()) {
            assert_ne!(c.point.key, a.point.key);
            assert_ne!(c.report_json, a.report_json);
            assert!(a.report_json.contains("\"backend\": \"analytical\""));
        }
        // Each backend's own re-run is 100% hits.
        let rerun = Campaign::new(tiny_space().with_backend_id("analytical"))
            .with_store(&store)
            .run()
            .unwrap();
        assert_eq!((rerun.simulated, rerun.cache_hits), (0, 4));
        assert_eq!(rerun.points, {
            let mut pts = analytical.points.clone();
            for p in &mut pts {
                p.done_mut().unwrap().cached = true;
            }
            pts
        });
        std::fs::remove_file(&store).ok();
    }

    #[test]
    fn backend_mismatched_points_are_rejected() {
        let points = tiny_space().enumerate().unwrap();
        let retargeted: Vec<_> = points
            .iter()
            .map(|p| p.with_backend("analytical").unwrap())
            .collect();
        // A cycle campaign refuses analytical-keyed points...
        match Campaign::new(tiny_space()).run_points(&retargeted) {
            Err(DseError::Spec(m)) => assert!(m.contains("keyed for backend"), "{m}"),
            other => panic!("expected Spec error, got {other:?}"),
        }
        // ...and an unresolvable backend id fails with guidance.
        match Campaign::new(tiny_space().with_backend_id("gpu")).run() {
            Err(DseError::Spec(m)) => assert!(m.contains("with_backend"), "{m}"),
            other => panic!("expected Spec error, got {other:?}"),
        }
    }

    #[test]
    fn with_backend_object_syncs_space_and_keys() {
        let backend: std::sync::Arc<dyn SimBackend> =
            std::sync::Arc::new(hygcn_core::AnalyticalBackend);
        let campaign = Campaign::new(tiny_space()).with_backend(backend);
        assert_eq!(campaign.space().backend, "analytical");
        let report = campaign.run().unwrap();
        assert_eq!(report.points.len(), 4);
        for p in report.completed() {
            assert_eq!(p.point.backend, "analytical");
            assert!(p.cycles > 0);
        }
    }

    #[test]
    fn build_workload_matches_campaign_inputs() {
        let (graph, model) = build_workload(
            &WorkloadSpec::dataset(DatasetKey::Ib, 0.05, 1),
            ModelKind::Gcn,
        )
        .unwrap();
        assert_eq!(graph.feature_len(), model.feature_len());
    }

    /// A backend that misbehaves deterministically: evaluations of
    /// configs whose aggregation buffer matches `fail_aggbuf` fail (by
    /// erroring or panicking), after burning through `transient` global
    /// transient failures first. Everything else delegates to the
    /// analytical backend.
    #[derive(Debug)]
    struct MisbehavingBackend {
        inner: AnalyticalBackend,
        fail_aggbuf: Option<usize>,
        panic_instead: bool,
        transient: Mutex<usize>,
    }

    impl MisbehavingBackend {
        fn failing_on(aggbuf_bytes: usize, panic_instead: bool) -> Self {
            Self {
                inner: AnalyticalBackend,
                fail_aggbuf: Some(aggbuf_bytes),
                panic_instead,
                transient: Mutex::new(0),
            }
        }

        fn transient_failures(n: usize) -> Self {
            Self {
                inner: AnalyticalBackend,
                fail_aggbuf: None,
                panic_instead: false,
                transient: Mutex::new(n),
            }
        }
    }

    impl SimBackend for MisbehavingBackend {
        fn backend_id(&self) -> &'static str {
            "analytical"
        }

        fn evaluate(
            &self,
            graph: &Graph,
            model: &GcnModel,
            config: &HyGcnConfig,
        ) -> Result<SimReport, SimError> {
            {
                let mut left = self.transient.lock().unwrap();
                if *left > 0 {
                    *left -= 1;
                    return Err(SimError::Backend(
                        "injected transient backend failure".into(),
                    ));
                }
            }
            if self.fail_aggbuf == Some(config.aggregation_buffer_bytes) {
                if self.panic_instead {
                    panic!("injected backend panic");
                }
                return Err(SimError::Backend("injected permanent failure".into()));
            }
            self.inner.evaluate(graph, model, config)
        }
    }

    #[test]
    fn failing_point_is_isolated_and_reattempted_on_resume() {
        let dir = std::env::temp_dir().join("hygcn-dse-failure-test");
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join("failed-points.jsonl");
        std::fs::remove_file(&store).ok();

        // The two aggbuf=4MB points fail permanently; the campaign must
        // still complete and report them.
        let (sleeper, _slept) = recording_sleeper();
        let broken = Campaign::new(tiny_space())
            .with_backend(Arc::new(MisbehavingBackend::failing_on(4 << 20, false)))
            .with_store(&store)
            .with_retry(RetryPolicy {
                max_attempts: 2,
                base_delay_ms: 1,
            })
            .with_sleeper(sleeper)
            .run()
            .unwrap();
        assert_eq!(broken.points.len(), 4);
        assert_eq!((broken.simulated, broken.failed), (2, 2));
        let errors: Vec<&str> = broken.points.iter().filter_map(|p| p.error()).collect();
        assert_eq!(errors.len(), 2);
        assert!(
            errors[0].contains("injected permanent failure"),
            "{errors:?}"
        );
        for p in &broken.points {
            let failed = p.point().assignment[2].1 == "4";
            assert_eq!(p.is_failed(), failed, "{}", p.point().label());
        }

        // Failed points were not persisted: a resumed run with a healthy
        // backend re-attempts exactly those two and nothing else.
        let healed = Campaign::new(tiny_space().with_backend_id("analytical"))
            .with_store(&store)
            .run()
            .unwrap();
        assert_eq!(
            (healed.simulated, healed.cache_hits, healed.failed),
            (2, 2, 0)
        );
        std::fs::remove_file(&store).ok();
    }

    #[test]
    fn panicking_backend_is_caught_not_fatal() {
        let report = Campaign::new(tiny_space())
            .with_backend(Arc::new(MisbehavingBackend::failing_on(4 << 20, true)))
            .with_retry(RetryPolicy::none())
            .run()
            .unwrap();
        assert_eq!((report.simulated, report.failed), (2, 2));
        let err = report
            .points
            .iter()
            .find_map(|p| p.error())
            .expect("a failed point");
        assert!(err.contains("backend panicked"), "{err}");
        assert!(err.contains("injected backend panic"), "{err}");
    }

    #[test]
    fn fast_substitution_is_transparent() {
        // The substituted campaign and the opted-out campaign must be
        // indistinguishable: same outcomes, same report JSON, and the
        // store keys stay `cycle`-keyed either way (a store filled by
        // one resumes the other with 100% hits).
        let dir = std::env::temp_dir().join("hygcn-dse-fast-sub-test");
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join("substituted.jsonl");
        std::fs::remove_file(&store).ok();

        let space = tiny_space().with_axis(Axis::parse("controller", "inorder,frfcfs").unwrap());
        let substituted = Campaign::new(space.clone())
            .with_store(&store)
            .run()
            .unwrap();
        let staged = Campaign::new(space.clone()).without_fast_substitution();
        assert!(!format!("{staged:?}").contains("fast_substitution: true"));
        let staged = staged.run().unwrap();
        assert_eq!(substituted.points.len(), 8);
        assert_eq!((substituted.simulated, substituted.failed), (8, 0));
        for (s, c) in substituted.completed().zip(staged.completed()) {
            assert_eq!(s.point.key, c.point.key);
            assert_eq!(s.point.backend, "cycle");
            assert_eq!(s.report_json, c.report_json);
        }
        // The store the substituted run filled serves the staged
        // campaign entirely from cache.
        let resumed = Campaign::new(space)
            .without_fast_substitution()
            .with_store(&store)
            .run()
            .unwrap();
        assert_eq!((resumed.simulated, resumed.cache_hits), (0, 8));
        std::fs::remove_file(&store).ok();
    }

    /// A backend that *claims* to be `cycle` but answers with the
    /// analytical model — so the substitution's dual-evaluation proof
    /// must fail, pinning every config class to this (staged) backend.
    #[derive(Debug)]
    struct ImpostorCycle(AnalyticalBackend);

    impl SimBackend for ImpostorCycle {
        fn backend_id(&self) -> &'static str {
            "cycle"
        }

        fn evaluate(
            &self,
            graph: &Graph,
            model: &GcnModel,
            config: &HyGcnConfig,
        ) -> Result<SimReport, SimError> {
            self.0.evaluate(graph, model, config)
        }
    }

    #[test]
    fn refuted_class_never_substitutes() {
        // Every point's stored result must come from the impostor — the
        // bit-equality proof fails on the first point of the class, so
        // cycle-fast output (which would carry different cycles) never
        // reaches the store.
        let report = Campaign::new(tiny_space())
            .with_backend(Arc::new(ImpostorCycle(AnalyticalBackend)))
            .run()
            .unwrap();
        assert_eq!((report.simulated, report.failed), (4, 0));
        for p in report.completed() {
            assert!(
                p.report_json.contains("\"backend\": \"analytical\""),
                "substitution leaked past a refuted class: {}",
                p.report_json
            );
        }
    }

    fn recording_sleeper() -> (Sleeper, Arc<Mutex<Vec<std::time::Duration>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let writer = log.clone();
        let sleeper: Sleeper = Arc::new(move |d| writer.lock().unwrap().push(d));
        (sleeper, log)
    }

    #[test]
    fn transient_eval_errors_retry_and_succeed() {
        let (sleeper, slept) = recording_sleeper();
        let report = Campaign::new(tiny_space())
            .with_backend(Arc::new(MisbehavingBackend::transient_failures(2)))
            .with_retry(RetryPolicy {
                max_attempts: 3,
                base_delay_ms: 5,
            })
            .with_sleeper(sleeper)
            .run()
            .unwrap();
        // Both injected failures were absorbed by retries: every point
        // completed, and the backoff schedule was executed (2 sleeps,
        // deterministic durations — no wall clock in the test itself).
        assert_eq!((report.simulated, report.failed), (4, 0));
        let slept = slept.lock().unwrap();
        assert_eq!(slept.len(), 2);
        for d in slept.iter() {
            assert!(d.as_millis() >= 5);
        }
    }
}
