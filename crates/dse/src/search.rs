//! Search strategies over a [`ConfigSpace`] — grid, seeded random
//! sampling, and successive halving with multi-fidelity rungs.
//!
//! ## Successive halving
//!
//! [`SearchStrategy::SuccessiveHalving`] evaluates the whole candidate
//! grid cheaply and spends full-cost simulation only on the points that
//! keep winning. Rung `r` of `R` evaluates the current survivors at
//! fidelity `eta^-(R-1-r)` — dataset workloads instantiate at
//! `scale * fidelity` ([`crate::space::WorkloadSpec::build_at`]) — then
//! promotes the best `ceil(n/eta)`-ish fraction (`max(1, n/eta)`) to the
//! next rung, ranked on the chosen [`BudgetMetric`]. The final rung runs
//! at fidelity 1.0, so its design points carry exactly the same cache
//! keys as a plain grid campaign over the same space.
//!
//! ## Determinism and resume invariants
//!
//! * **Deterministic promotion.** Survivors are ranked by
//!   `(metric, cache key)` ascending — the cache key is the tie-break,
//!   so equal-metric points promote in a stable, process-independent
//!   order. Given the same space, strategy, and store, two runs produce
//!   bit-identical rung reports and final survivors.
//! * **Every rung is cached.** Rung evaluations flow through the same
//!   [`crate::store::ResultStore`] as plain campaigns: a rung point's
//!   key hashes its fidelity (via `HyGcnConfig::canon`), so a
//!   half-fidelity result never masquerades as a full-fidelity one, and
//!   a killed or re-run search re-simulates only what is missing. An
//!   unchanged re-run performs **zero** simulations and reproduces the
//!   identical [`SearchOutcome`].
//! * **Shared final-rung results.** Because fidelity 1.0 is the default
//!   config, final-rung records are interchangeable with plain-campaign
//!   records for the same points — a later full grid campaign gets the
//!   halving winners' simulations for free, and vice versa.

use std::path::Path;
use std::sync::Arc;

use hygcn_core::backend::SimBackend;

use crate::campaign::{Campaign, CampaignReport, CompletedPoint, PointOutcome};
use crate::space::ConfigSpace;
use crate::store_io::StoreIo;
use crate::DseError;

/// The scalar a successive-halving rung ranks (and minimizes) on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetMetric {
    /// End-to-end simulated cycles.
    #[default]
    Cycles,
    /// Total dynamic energy in joules.
    EnergyJ,
    /// Total DRAM traffic in bytes.
    DramBytes,
}

impl BudgetMetric {
    /// Parses a CLI token (`cycles`, `energy`, `dram`).
    pub fn parse(token: &str) -> Result<Self, DseError> {
        match token {
            "cycles" => Ok(BudgetMetric::Cycles),
            "energy" => Ok(BudgetMetric::EnergyJ),
            "dram" => Ok(BudgetMetric::DramBytes),
            _ => Err(DseError::Spec(format!(
                "unknown metric '{token}' (cycles/energy/dram)"
            ))),
        }
    }

    /// The metric's value for one completed point (as `f64`; all three
    /// metrics are exactly representable at simulated magnitudes).
    pub fn of(&self, o: &CompletedPoint) -> f64 {
        match self {
            BudgetMetric::Cycles => o.cycles as f64,
            BudgetMetric::EnergyJ => o.energy_j,
            BudgetMetric::DramBytes => o.dram_bytes as f64,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BudgetMetric::Cycles => "cycles",
            BudgetMetric::EnergyJ => "energy",
            BudgetMetric::DramBytes => "dram",
        }
    }
}

/// How to spend simulations over a design space.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchStrategy {
    /// Evaluate every enumerated point (the plain campaign).
    Grid,
    /// Evaluate a deterministic random subset of the grid.
    RandomSample {
        /// Upper bound on evaluated points.
        max_points: usize,
        /// Shuffle seed.
        seed: u64,
    },
    /// Multi-fidelity successive halving (see the module docs).
    SuccessiveHalving {
        /// Reduction factor between rungs (>= 2); also sets the rung
        /// fidelity ladder `eta^-(rungs-1-r)`.
        eta: usize,
        /// Number of rungs (>= 1); the last runs at fidelity 1.0.
        rungs: usize,
        /// The metric promotion ranks on.
        budget_metric: BudgetMetric,
        /// When set, the full candidate grid is first screened by the
        /// `analytical` backend (microseconds per point, cached under
        /// its own backend-keyed entries in the same store) and only the
        /// best `n/eta` candidates enter rung 0 — so the cheapest *real*
        /// rung already starts from a pruned field. The prefilter's
        /// summary lands in [`SearchOutcome::prefilter`].
        analytical_prefilter: bool,
    },
}

/// One rung's summary: what was evaluated and who got promoted.
#[derive(Debug, Clone, PartialEq)]
pub struct RungReport {
    /// Rung index (0-based, cheapest first).
    pub rung: usize,
    /// The fidelity every evaluation in this rung ran at.
    pub fidelity: f64,
    /// Points evaluated in this rung.
    pub evaluated: usize,
    /// Of those, simulated fresh this run.
    pub simulated: usize,
    /// Of those, served from the store.
    pub cache_hits: usize,
    /// Cache keys of the promoted points, best-first under the budget
    /// metric (these are the *rung-level* keys — the rows this rung
    /// wrote to the store). The last rung promotes everything it
    /// evaluated, ranked.
    pub survivors: Vec<u64>,
}

/// Everything a search produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The analytical screening pass, when the strategy enabled it
    /// (`fidelity` is 1.0 — the prefilter screens full workloads, just
    /// under the cheap backend; `rung` is meaningless and set to 0).
    pub prefilter: Option<RungReport>,
    /// Per-rung summaries (empty for [`SearchStrategy::Grid`] and
    /// [`SearchStrategy::RandomSample`], which have no rung structure).
    pub rungs: Vec<RungReport>,
    /// The final full-fidelity report: every point for grid/random, the
    /// surviving points (in rank order) for successive halving.
    pub report: CampaignReport,
}

/// Runs `strategy` over `space`, persisting every evaluation to `store`
/// (when given) so the search is resumable and an unchanged re-run
/// performs zero simulations. The evaluation backend is resolved from
/// the space's backend id; use [`run_search_with_backend`] to supply a
/// backend `hygcn-core` does not provide (the platform models).
///
/// # Errors
///
/// [`DseError::Spec`] for malformed spaces or strategy parameters
/// (`eta < 2`, `rungs == 0`); the campaign executor's errors otherwise.
pub fn run_search(
    space: &ConfigSpace,
    strategy: &SearchStrategy,
    store: Option<&Path>,
) -> Result<SearchOutcome, DseError> {
    run_search_with_backend(space, strategy, store, None)
}

/// [`run_search`] with an explicit backend object (syncs the space's
/// backend id to it, exactly as [`Campaign::with_backend`] does).
///
/// # Errors
///
/// As [`run_search`].
pub fn run_search_with_backend(
    space: &ConfigSpace,
    strategy: &SearchStrategy,
    store: Option<&Path>,
    backend: Option<Arc<dyn SimBackend>>,
) -> Result<SearchOutcome, DseError> {
    run_search_io(space, strategy, store, backend, None, true)
}

/// [`run_search_with_backend`] with an explicit [`StoreIo`]
/// implementation routing all store file traffic — the entry point the
/// CLI's `--fault-plan` flag uses to run a whole search through
/// [`crate::store_io::FaultyIo`] (`None` keeps the default
/// [`crate::store_io::RealIo`]) — and the fast-substitution switch the
/// CLI's `--no-fast-substitution` flag disables (see
/// [`Campaign::without_fast_substitution`]; `true` is the default
/// behavior of the other entry points).
///
/// # Errors
///
/// As [`run_search`].
pub fn run_search_io(
    space: &ConfigSpace,
    strategy: &SearchStrategy,
    store: Option<&Path>,
    backend: Option<Arc<dyn SimBackend>>,
    store_io: Option<Arc<dyn StoreIo>>,
    fast_substitution: bool,
) -> Result<SearchOutcome, DseError> {
    let space = match &backend {
        Some(b) => space.clone().with_backend_id(b.backend_id()),
        None => space.clone(),
    };
    let space = &space;
    let campaign_for = |space: ConfigSpace| {
        let mut c = Campaign::new(space);
        if !fast_substitution {
            c = c.without_fast_substitution();
        }
        if let Some(b) = &backend {
            c = c.with_backend(b.clone());
        }
        if let Some(io) = &store_io {
            c = c.with_store_io(io.clone());
        }
        match store {
            Some(p) => c.with_store(p),
            None => c,
        }
    };
    match strategy {
        SearchStrategy::Grid => Ok(SearchOutcome {
            prefilter: None,
            rungs: Vec::new(),
            report: campaign_for(space.clone()).run()?,
        }),
        SearchStrategy::RandomSample { max_points, seed } => {
            let sampled = space.clone().with_sample(crate::space::SpaceSample {
                max_points: *max_points,
                seed: *seed,
            });
            Ok(SearchOutcome {
                prefilter: None,
                rungs: Vec::new(),
                report: campaign_for(sampled).run()?,
            })
        }
        SearchStrategy::SuccessiveHalving {
            eta,
            rungs,
            budget_metric,
            analytical_prefilter,
        } => {
            if *eta < 2 {
                return Err(DseError::Spec(format!("eta must be >= 2 (got {eta})")));
            }
            if *rungs == 0 {
                return Err(DseError::Spec("rungs must be >= 1".into()));
            }
            let campaign = campaign_for(space.clone());
            let mut survivors = space.enumerate()?;
            let mut prefilter = None;
            if *analytical_prefilter {
                // Screen the whole field with the analytical backend:
                // same store, backend-disjoint keys, so the screening is
                // itself cached and a re-run re-screens nothing. The
                // workload canon is computed once per workload, not per
                // point (an edge-list canon hashes the file's content).
                let mut canons: std::collections::BTreeMap<usize, String> =
                    std::collections::BTreeMap::new();
                let screen_points = survivors
                    .iter()
                    .map(|p| {
                        let canon = match canons.entry(p.workload_idx) {
                            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                            std::collections::btree_map::Entry::Vacant(e) => {
                                e.insert(p.workload.canon()?)
                            }
                        };
                        let mut sp = p.clone();
                        sp.backend = "analytical".to_string();
                        sp.key = crate::space::cache_key("analytical", &sp.config, sp.model, canon);
                        Ok(sp)
                    })
                    .collect::<Result<Vec<_>, DseError>>()?;
                let screen_campaign = {
                    let mut c = Campaign::new(space.clone().with_backend_id("analytical"));
                    if let Some(io) = &store_io {
                        c = c.with_store_io(io.clone());
                    }
                    match store {
                        Some(p) => c.with_store(p),
                        None => c,
                    }
                };
                let report = screen_campaign.run_points(&screen_points)?;
                let mut order = ranked(&report.points, *budget_metric);
                order.truncate((order.len() / *eta).max(1));
                prefilter = Some(RungReport {
                    rung: 0,
                    fidelity: 1.0,
                    evaluated: report.points.len(),
                    simulated: report.simulated,
                    cache_hits: report.cache_hits,
                    survivors: order
                        .iter()
                        .map(|&i| report.points[i].point().key)
                        .collect(),
                });
                survivors = order.iter().map(|&i| survivors[i].clone()).collect();
            }
            let mut rung_reports = Vec::with_capacity(*rungs);
            let mut final_report = None;
            for r in 0..*rungs {
                let fidelity = 1.0 / (*eta as f64).powi((*rungs - 1 - r) as i32);
                let rung_points = survivors
                    .iter()
                    .map(|p| p.at_fidelity(fidelity))
                    .collect::<Result<Vec<_>, _>>()?;
                let report = campaign.run_points(&rung_points)?;

                // Rank ascending on (metric, key): the key tie-break makes
                // promotion deterministic across processes. Failed
                // evaluations are never ranked — a point that failed at a
                // cheap rung is simply not promoted, and a re-run
                // re-attempts it because it was never persisted.
                let mut order = ranked(&report.points, *budget_metric);
                let keep = if r + 1 == *rungs {
                    order.len()
                } else {
                    (order.len() / *eta).max(1)
                };
                order.truncate(keep);
                rung_reports.push(RungReport {
                    rung: r,
                    fidelity,
                    evaluated: report.points.len(),
                    simulated: report.simulated,
                    cache_hits: report.cache_hits,
                    survivors: order
                        .iter()
                        .map(|&i| report.points[i].point().key)
                        .collect(),
                });
                // Promote the original (full-fidelity) points; outcomes
                // come back in input order, so index i maps 1:1.
                survivors = order.iter().map(|&i| survivors[i].clone()).collect();
                if r + 1 == *rungs {
                    // The final rung ran at fidelity 1.0: re-assemble its
                    // report in rank order as the search's result.
                    let mut points: Vec<PointOutcome> = Vec::with_capacity(keep);
                    for &i in &order {
                        points.push(report.points[i].clone());
                    }
                    final_report = Some(CampaignReport {
                        points,
                        simulated: report.simulated,
                        cache_hits: report.cache_hits,
                        failed: report.failed,
                    });
                }
            }
            let report = final_report
                .ok_or_else(|| DseError::Spec("successive halving needs rungs >= 1".into()))?;
            Ok(SearchOutcome {
                prefilter,
                rungs: rung_reports,
                report,
            })
        }
    }
}

/// Indices of the completed points, ranked ascending on
/// `(metric, cache key)` — the deterministic promotion order. Failed
/// points are excluded.
fn ranked(points: &[PointOutcome], metric: BudgetMetric) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len())
        .filter(|&i| points[i].done().is_some())
        .collect();
    order.sort_by(|&a, &b| {
        metric
            .of(points[a].expect_done())
            .total_cmp(&metric.of(points[b].expect_done()))
            .then(points[a].point().key.cmp(&points[b].point().key))
    });
    order
}

/// Renders the analytical-prefilter summary line (the CLI's
/// `--prefilter on` banner; empty when the search ran none).
pub fn prefilter_to_text(prefilter: Option<&RungReport>) -> String {
    match prefilter {
        Some(p) => format!(
            "analytical prefilter: {} screened ({} simulated, {} cached) -> {} enter rung 0\n",
            p.evaluated,
            p.simulated,
            p.cache_hits,
            p.survivors.len(),
        ),
        None => String::new(),
    }
}

/// Renders the rung ladder as a compact text table (the CLI's
/// `--strategy successive-halving` banner).
pub fn rungs_to_text(rungs: &[RungReport], metric: BudgetMetric) -> String {
    let mut out = format!(
        "successive halving ({} rungs, metric: {}):\n",
        rungs.len(),
        metric.name()
    );
    for r in rungs {
        out += &format!(
            "  rung {}: fidelity {:<6} {:>4} evaluated ({} simulated, {} cached) -> {} promoted\n",
            r.rung,
            format!("{:?}", r.fidelity),
            r.evaluated,
            r.simulated,
            r.cache_hits,
            r.survivors.len(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Axis, WorkloadSpec};
    use hygcn_gcn::model::ModelKind;
    use hygcn_graph::datasets::DatasetKey;

    fn space8() -> ConfigSpace {
        ConfigSpace::new(
            vec![WorkloadSpec::dataset(DatasetKey::Ib, 0.2, 1)],
            vec![ModelKind::Gcn],
        )
        .with_axis(Axis::parse("aggbuf-mb", "2,4,8,16").unwrap())
        .with_axis(Axis::parse("sparsity", "on,off").unwrap())
    }

    fn halving(eta: usize, rungs: usize) -> SearchStrategy {
        SearchStrategy::SuccessiveHalving {
            eta,
            rungs,
            budget_metric: BudgetMetric::Cycles,
            analytical_prefilter: false,
        }
    }

    #[test]
    fn halving_ladder_counts_and_fidelities() {
        let out = run_search(&space8(), &halving(2, 3), None).unwrap();
        assert_eq!(out.rungs.len(), 3);
        assert_eq!(out.rungs[0].fidelity, 0.25);
        assert_eq!(out.rungs[1].fidelity, 0.5);
        assert_eq!(out.rungs[2].fidelity, 1.0);
        assert_eq!(out.rungs[0].evaluated, 8);
        assert_eq!(out.rungs[0].survivors.len(), 4);
        assert_eq!(out.rungs[1].evaluated, 4);
        assert_eq!(out.rungs[1].survivors.len(), 2);
        assert_eq!(out.rungs[2].evaluated, 2);
        assert_eq!(out.rungs[2].survivors.len(), 2);
        assert_eq!(out.report.points.len(), 2);
        // Final-rung points run at full fidelity with untouched keys.
        for p in &out.report.points {
            assert_eq!(p.point().config.fidelity, 1.0);
            assert!(!p.point().assignment.iter().any(|(k, _)| k == "fidelity"));
        }
        // Rank order: the best point leads.
        assert!(
            out.report.points[0].expect_done().cycles <= out.report.points[1].expect_done().cycles
        );
    }

    #[test]
    fn halving_is_deterministic_and_resumable() {
        let dir = std::env::temp_dir().join("hygcn-dse-search-test");
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join("halving.jsonl");
        std::fs::remove_file(&store).ok();

        let first = run_search(&space8(), &halving(2, 2), Some(&store)).unwrap();
        let total_sims: usize = first.rungs.iter().map(|r| r.simulated).sum();
        assert_eq!(total_sims, 8 + 4, "8 half-fidelity + 4 full-fidelity");

        // Unchanged re-run: zero simulations, bit-identical outcome.
        let second = run_search(&space8(), &halving(2, 2), Some(&store)).unwrap();
        assert!(second.rungs.iter().all(|r| r.simulated == 0));
        assert!(second
            .rungs
            .iter()
            .zip(&first.rungs)
            .all(|(s, f)| s.survivors == f.survivors && s.fidelity == f.fidelity));
        assert_eq!(second.report.points.len(), first.report.points.len());
        for (s, f) in second.report.points.iter().zip(&first.report.points) {
            assert_eq!(s.point().key, f.point().key);
            assert_eq!(s.expect_done().report_json, f.expect_done().report_json);
        }
        std::fs::remove_file(&store).ok();
    }

    #[test]
    fn halving_shares_final_rung_with_plain_campaigns() {
        let dir = std::env::temp_dir().join("hygcn-dse-search-test");
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join("shared.jsonl");
        std::fs::remove_file(&store).ok();

        let out = run_search(&space8(), &halving(2, 2), Some(&store)).unwrap();
        // A plain grid campaign over the same space reuses the winners'
        // full-fidelity simulations (4 of 8 points cached).
        let grid = Campaign::new(space8()).with_store(&store).run().unwrap();
        assert_eq!(grid.cache_hits, out.report.points.len());
        assert_eq!(grid.simulated, 8 - out.report.points.len());
        std::fs::remove_file(&store).ok();
    }

    #[test]
    fn single_rung_halving_is_a_full_fidelity_grid() {
        let out = run_search(&space8(), &halving(4, 1), None).unwrap();
        assert_eq!(out.rungs.len(), 1);
        assert_eq!(out.rungs[0].fidelity, 1.0);
        assert_eq!(out.report.points.len(), 8);
    }

    #[test]
    fn grid_and_random_strategies_pass_through() {
        let grid = run_search(&space8(), &SearchStrategy::Grid, None).unwrap();
        assert!(grid.rungs.is_empty());
        assert_eq!(grid.report.points.len(), 8);
        let random = run_search(
            &space8(),
            &SearchStrategy::RandomSample {
                max_points: 3,
                seed: 5,
            },
            None,
        )
        .unwrap();
        assert_eq!(random.report.points.len(), 3);
    }

    #[test]
    fn bad_parameters_are_spec_errors() {
        assert!(matches!(
            run_search(&space8(), &halving(1, 2), None),
            Err(DseError::Spec(_))
        ));
        assert!(matches!(
            run_search(&space8(), &halving(2, 0), None),
            Err(DseError::Spec(_))
        ));
        assert!(BudgetMetric::parse("joules").is_err());
        assert_eq!(
            BudgetMetric::parse("dram").unwrap(),
            BudgetMetric::DramBytes
        );
    }

    #[test]
    fn metric_choice_changes_ranking_only_deterministically() {
        for metric in [
            BudgetMetric::Cycles,
            BudgetMetric::EnergyJ,
            BudgetMetric::DramBytes,
        ] {
            let strategy = SearchStrategy::SuccessiveHalving {
                eta: 2,
                rungs: 2,
                budget_metric: metric,
                analytical_prefilter: false,
            };
            let a = run_search(&space8(), &strategy, None).unwrap();
            let b = run_search(&space8(), &strategy, None).unwrap();
            assert_eq!(a.rungs, b.rungs, "{}", metric.name());
        }
    }

    #[test]
    fn analytical_prefilter_prunes_the_field_before_rung_zero() {
        let dir = std::env::temp_dir().join("hygcn-dse-search-test");
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join("prefilter.jsonl");
        std::fs::remove_file(&store).ok();
        let strategy = SearchStrategy::SuccessiveHalving {
            eta: 2,
            rungs: 2,
            budget_metric: BudgetMetric::Cycles,
            analytical_prefilter: true,
        };
        let out = run_search(&space8(), &strategy, Some(&store)).unwrap();
        let pre = out.prefilter.as_ref().expect("prefilter ran");
        // 8 candidates screened analytically, 4 enter the rung ladder.
        assert_eq!((pre.evaluated, pre.survivors.len()), (8, 4));
        assert_eq!(pre.simulated, 8);
        assert_eq!(out.rungs[0].evaluated, 4);
        assert_eq!(out.rungs[1].evaluated, 2);
        // Total cycle-accurate work: 4 half-fidelity + 2 full-fidelity,
        // versus 8 + 4 without the prefilter.
        let sims: usize = out.rungs.iter().map(|r| r.simulated).sum();
        assert_eq!(sims, 6);
        assert!(!prefilter_to_text(out.prefilter.as_ref()).is_empty());
        assert!(prefilter_to_text(None).is_empty());

        // Re-run: the screening pass itself is served from the store.
        let again = run_search(&space8(), &strategy, Some(&store)).unwrap();
        let pre2 = again.prefilter.as_ref().unwrap();
        assert_eq!((pre2.simulated, pre2.cache_hits), (0, 8));
        assert_eq!(pre2.survivors, pre.survivors);
        assert!(again.rungs.iter().all(|r| r.simulated == 0));
        assert_eq!(again.report.points.len(), out.report.points.len());
        std::fs::remove_file(&store).ok();
    }

    #[test]
    fn prefilter_keys_never_collide_with_cycle_keys() {
        let strategy = SearchStrategy::SuccessiveHalving {
            eta: 2,
            rungs: 1,
            budget_metric: BudgetMetric::Cycles,
            analytical_prefilter: true,
        };
        let out = run_search(&space8(), &strategy, None).unwrap();
        let screen: std::collections::BTreeSet<u64> = out
            .prefilter
            .as_ref()
            .unwrap()
            .survivors
            .iter()
            .copied()
            .collect();
        for p in &out.report.points {
            assert!(!screen.contains(&p.point().key));
            assert_eq!(p.point().backend, "cycle");
        }
    }

    #[test]
    fn rung_text_renders_every_rung() {
        let out = run_search(&space8(), &halving(2, 2), None).unwrap();
        let text = rungs_to_text(&out.rungs, BudgetMetric::Cycles);
        assert!(text.contains("rung 0"));
        assert!(text.contains("rung 1"));
        assert!(text.contains("metric: cycles"));
    }
}
