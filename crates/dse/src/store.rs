//! The on-disk campaign result store — `campaign.jsonl`.
//!
//! One line per completed design point, appended as soon as the point
//! finishes (so a killed campaign loses at most the in-flight batch), and
//! keyed by the point's stable cache key. Opening the store re-reads all
//! lines, which is what makes campaigns resumable: points whose key is
//! already present are never simulated again.
//!
//! Line shape (a strict subset of JSON, hand-emitted and hand-parsed so
//! the crate stays dependency-free):
//!
//! ```text
//! {"key":"<16 hex>","label":"...","graph":"<16 hex>","cycles":N,
//!  "time_s":F,"energy_j":F,"dram_bytes":N,"report":{...},"crc":"<16 hex>"}
//! ```
//!
//! `report` is [`hygcn_core::SimReport::to_json_compact`] verbatim — the
//! stored report of a point is bit-identical to what `hygcn simulate`
//! serializes for the same configuration and workload. `crc` is an
//! FNV-1a checksum of the record without it; legacy lines that predate
//! the field still load (unverified), so existing stores keep working
//! byte-for-byte with no cache invalidation.
//!
//! ## Failure model
//!
//! All file traffic flows through the [`crate::store_io::StoreIo`] seam,
//! which the durability tests replace with a fault injector. The store's
//! contract:
//!
//! * A **torn tail** (kill mid-append: partial last line, no trailing
//!   newline) is truncated away on open; only the in-flight record is
//!   lost.
//! * A damaged line **mid-file** (bit flip, checksum mismatch, partial
//!   overwrite) is *quarantined*, not fatal: the rest of the store loads
//!   and the affected point simply re-runs. [`fsck`] reports damage
//!   read-only; [`salvage`] rewrites the store canonically and sidelines
//!   damaged lines to `<store>.quarantine`.
//! * **Transient append errors** are retried with bounded exponential
//!   backoff ([`crate::store_io::RetryPolicy`]); any partial write is
//!   rolled back before the retry so records can never concatenate.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::store_io::{default_sleeper, is_transient, RealIo, RetryPolicy, Sleeper, StoreIo};
use crate::DseError;

/// One completed design point as persisted in the store.
///
/// **Duplicate-key semantics:** the store is append-only, so a salvaged
/// or hand-compacted file may carry several lines with one key. Load
/// resolves these **last-write-wins** — the record appended latest (the
/// line furthest down the file) is the one served — making re-appended
/// records deterministic across open/salvage cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreRecord {
    /// The point's stable cache key.
    pub key: u64,
    /// Human-readable point label (provenance only; the key decides
    /// identity).
    pub label: String,
    /// Content hash of the built graph (provenance).
    pub graph_hash: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Simulated seconds.
    pub time_s: f64,
    /// Total dynamic energy in joules.
    pub energy_j: f64,
    /// Total DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// The full report, compact single-line JSON.
    pub report_json: String,
}

/// FNV-1a over a byte stream — the same family as the cache key hash,
/// kept local so the record checksum is self-contained.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The checksum stored in a record's `crc` field: FNV-1a of the record
/// line *without* the crc suffix (i.e. of the legacy line shape).
fn line_checksum(body: &str) -> u64 {
    fnv1a(body.bytes())
}

/// `,"crc":"` + 16 hex digits + `"}`.
const CRC_TAIL: usize = 8 + 16 + 2;

/// Splits a checksummed line into its legacy body and the stored crc;
/// `None` for legacy (checksum-less) lines.
fn split_crc(line: &str) -> Option<(String, u64)> {
    let b = line.as_bytes();
    if b.len() < CRC_TAIL + 2 || !line.ends_with("\"}") {
        return None;
    }
    let cut = b.len() - CRC_TAIL;
    if b.get(cut..cut + 8) != Some(b",\"crc\":\"".as_slice()) {
        return None;
    }
    let hex = std::str::from_utf8(b.get(cut + 8..cut + 24)?).ok()?;
    let crc = u64::from_str_radix(hex, 16).ok()?;
    // `cut` lands on the ASCII `,` of the suffix, so it is a char
    // boundary; restore the object's closing brace the suffix replaced.
    let mut body = line.get(..cut)?.to_string();
    body.push('}');
    Some((body, crc))
}

impl StoreRecord {
    /// The legacy (pre-checksum) line shape — what `parse_line` accepts
    /// from old stores, and the byte string the crc covers.
    fn legacy_body(&self) -> String {
        format!(
            "{{\"key\":\"{:016x}\",\"label\":\"{}\",\"graph\":\"{:016x}\",\"cycles\":{},\"time_s\":{:?},\"energy_j\":{:?},\"dram_bytes\":{},\"report\":{}}}",
            self.key,
            escape(&self.label),
            self.graph_hash,
            self.cycles,
            self.time_s,
            self.energy_j,
            self.dram_bytes,
            self.report_json,
        )
    }

    fn to_line(&self) -> String {
        let body = self.legacy_body();
        let crc = line_checksum(&body);
        let trimmed = body.strip_suffix('}').unwrap_or(&body);
        format!("{trimmed},\"crc\":\"{crc:016x}\"}}")
    }

    fn parse_line(line: &str) -> Result<Self, DseError> {
        Self::parse_line_checked(line).map(|(rec, _)| rec)
    }

    /// Parses a line, verifying the checksum when present; the flag says
    /// whether the line carried one (legacy lines parse unverified).
    fn parse_line_checked(line: &str) -> Result<(Self, bool), DseError> {
        match split_crc(line) {
            Some((body, stored)) => {
                let computed = line_checksum(&body);
                if computed != stored {
                    return Err(DseError::Store(format!(
                        "checksum mismatch (stored {stored:016x}, computed {computed:016x})"
                    )));
                }
                Ok((Self::parse_body(&body)?, true))
            }
            None => Ok((Self::parse_body(line)?, false)),
        }
    }

    fn parse_body(line: &str) -> Result<Self, DseError> {
        let bad = |what: &str| DseError::Store(what.to_string());
        let key = u64::from_str_radix(
            &field_str(line, "key").ok_or_else(|| bad("missing key"))?,
            16,
        )
        .map_err(|_| bad("non-hex key"))?;
        let graph_hash = u64::from_str_radix(
            &field_str(line, "graph").ok_or_else(|| bad("missing graph"))?,
            16,
        )
        .map_err(|_| bad("non-hex graph hash"))?;
        let label = unescape(&field_str(line, "label").ok_or_else(|| bad("missing label"))?);
        let cycles = field_raw(line, "cycles")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("missing cycles"))?;
        let time_s = field_raw(line, "time_s")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("missing time_s"))?;
        let energy_j = field_raw(line, "energy_j")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("missing energy_j"))?;
        let dram_bytes = field_raw(line, "dram_bytes")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("missing dram_bytes"))?;
        // The report object runs to the line's final closing brace.
        let marker = "\"report\":";
        let at = line.find(marker).ok_or_else(|| bad("missing report"))?;
        let report_json = line
            .get(at + marker.len()..line.len() - 1)
            .ok_or_else(|| bad("malformed report object"))?
            .to_string();
        if !report_json.starts_with('{') || !report_json.ends_with('}') {
            return Err(bad("malformed report object"));
        }
        Ok(Self {
            key,
            label,
            graph_hash,
            cycles,
            time_s,
            energy_j,
            dram_bytes,
            report_json,
        })
    }

    /// The backend id this record's report carries in its provenance;
    /// the cycle and seed reference paths store no provenance marker and
    /// share the `cycle` bucket.
    pub fn backend_id(&self) -> &str {
        let marker = "\"backend\": \"";
        if let Some(at) = self.report_json.find(marker) {
            if let Some(s) = self
                .report_json
                .get(at + marker.len()..)
                .and_then(|rest| rest.find('"').and_then(|end| rest.get(..end)))
            {
                return s;
            }
        }
        "cycle"
    }
}

/// Minimal escaping for labels (backslash, double quote, newline — a
/// raw newline would split the one-record-per-line format).
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(next) => out.push(next),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Extracts a `"name":"..."` string field (quote-aware for escapes).
fn field_str(line: &str, name: &str) -> Option<String> {
    let marker = format!("\"{name}\":\"");
    let start = line.find(&marker)? + marker.len();
    let rest = line.get(start..)?;
    let mut end = 0;
    let bytes = rest.as_bytes();
    while let Some(&b) = bytes.get(end) {
        match b {
            b'\\' => end += 2,
            b'"' => return rest.get(..end).map(str::to_string),
            _ => end += 1,
        }
    }
    None
}

/// Extracts a bare `"name":value` scalar field (up to `,` or `}`).
fn field_raw(line: &str, name: &str) -> Option<String> {
    let marker = format!("\"{name}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = line.get(start..)?;
    let end = rest.find([',', '}'])?;
    rest.get(..end).map(str::to_string)
}

/// A damaged store line a tolerant open preserved instead of loading —
/// the line stays on disk untouched until [`salvage`] sidelines it.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedLine {
    /// 1-based line number in the store file.
    pub line_no: usize,
    /// The damaged line, verbatim.
    pub line: String,
    /// Why it failed to load.
    pub reason: String,
}

/// An append-only, keyed store of completed points; optionally backed by
/// a `campaign.jsonl` file reached through a [`StoreIo`] seam.
pub struct ResultStore {
    path: Option<PathBuf>,
    io: Arc<dyn StoreIo>,
    retry: RetryPolicy,
    sleeper: Sleeper,
    records: BTreeMap<u64, StoreRecord>,
    quarantined: Vec<QuarantinedLine>,
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore")
            .field("path", &self.path)
            .field("io", &self.io)
            .field("retry", &self.retry)
            .field("records", &self.records.len())
            .field("quarantined", &self.quarantined.len())
            .finish()
    }
}

impl ResultStore {
    /// A store with no backing file (results live for this process only —
    /// what the legacy `sweep` alias uses).
    pub fn in_memory() -> Self {
        Self {
            path: None,
            io: Arc::new(RealIo),
            retry: RetryPolicy::default(),
            sleeper: default_sleeper(),
            records: BTreeMap::new(),
            quarantined: Vec::new(),
        }
    }

    /// Opens (or creates) a file-backed store over the real filesystem
    /// with the default retry policy. See [`Self::open_with`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, DseError> {
        Self::open_with(
            path,
            Arc::new(RealIo),
            RetryPolicy::default(),
            default_sleeper(),
        )
    }

    /// Opens (or creates) a file-backed store, loading every existing
    /// record through `io`.
    ///
    /// Damage tolerance:
    ///
    /// * A campaign killed mid-append leaves a *torn* final line — a
    ///   partial record with no trailing newline. That is exactly the
    ///   state the store exists to recover from, so an unparseable final
    ///   line in a file that does not end with `\n` is discarded (and
    ///   truncated away, so the next append cannot concatenate onto it);
    ///   the point it belonged to simply re-runs.
    /// * Any other damaged line (parse failure or checksum mismatch) is
    ///   **quarantined**: skipped, left on disk, reported via
    ///   [`Self::quarantined`]. The rest of the store loads normally.
    /// * Duplicate keys resolve last-write-wins (see [`StoreRecord`]).
    ///
    /// # Errors
    ///
    /// [`DseError::StoreIo`] when reading the file (or truncating a torn
    /// tail) fails, naming the operation and path.
    pub fn open_with(
        path: impl AsRef<Path>,
        io: Arc<dyn StoreIo>,
        retry: RetryPolicy,
        sleeper: Sleeper,
    ) -> Result<Self, DseError> {
        let _obs = hygcn_obs::span(hygcn_obs::Phase::StoreOpen);
        let path = path.as_ref().to_path_buf();
        let mut records = BTreeMap::new();
        let mut quarantined = Vec::new();
        if let Some(content) = io
            .read(&path)
            .map_err(|e| DseError::store_io("open", &path, &e))?
        {
            let lines: Vec<&str> = content.lines().collect();
            for (i, line) in lines.iter().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                match StoreRecord::parse_line(line) {
                    Ok(rec) => {
                        records.insert(rec.key, rec);
                        if i + 1 == lines.len() && !content.ends_with('\n') {
                            // A kill that lost *only* the record's
                            // trailing newline: the record is intact,
                            // but the terminator must be restored before
                            // any future append can concatenate onto it.
                            io.append(&path, b"\n")
                                .map_err(|e| DseError::store_io("repair", &path, &e))?;
                        }
                    }
                    Err(_) if i + 1 == lines.len() && !content.ends_with('\n') => {
                        // Torn tail from a killed append: drop it on
                        // disk too, so future appends start clean.
                        let keep = (content.len() - line.len()) as u64;
                        io.truncate(&path, keep)
                            .map_err(|e| DseError::store_io("truncate", &path, &e))?;
                    }
                    Err(e) => {
                        hygcn_obs::count(hygcn_obs::Counter::QuarantinedLines, 1);
                        quarantined.push(QuarantinedLine {
                            line_no: i + 1,
                            line: line.to_string(),
                            reason: match e {
                                DseError::Store(m) => m,
                                other => other.to_string(),
                            },
                        });
                    }
                }
            }
        }
        Ok(Self {
            path: Some(path),
            io,
            retry,
            sleeper,
            records,
            quarantined,
        })
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Looks up a completed point by key.
    pub fn get(&self, key: u64) -> Option<&StoreRecord> {
        self.records.get(&key)
    }

    /// Damaged lines the open pass skipped (empty for a healthy store).
    pub fn quarantined(&self) -> &[QuarantinedLine] {
        &self.quarantined
    }

    /// Inserts a record and appends it to the backing file immediately
    /// (streaming: a campaign killed mid-run keeps everything already
    /// appended). Re-inserting an existing key is a no-op.
    ///
    /// Transient write failures retry with the store's
    /// [`RetryPolicy`]; every failed attempt's partial bytes are rolled
    /// back first, so records can never concatenate. (After a hard kill
    /// the rollback fails too — the torn tail then heals on next open.)
    ///
    /// # Errors
    ///
    /// [`DseError::StoreIo`] once retries are exhausted (or immediately
    /// for permanent errors such as a full disk), naming the operation
    /// and path.
    pub fn append(&mut self, rec: StoreRecord) -> Result<(), DseError> {
        if self.records.contains_key(&rec.key) {
            return Ok(());
        }
        if let Some(path) = &self.path {
            let _obs = hygcn_obs::span(hygcn_obs::Phase::StoreAppend);
            let mut line = rec.to_line();
            line.push('\n');
            let mut attempt = 0u32;
            loop {
                attempt += 1;
                let pre = self
                    .io
                    .len(path)
                    .map_err(|e| DseError::store_io("append", path, &e))?;
                match self.io.append(path, line.as_bytes()) {
                    Ok(()) => break,
                    Err(e) => {
                        let _ = self.io.truncate(path, pre);
                        if is_transient(&e) && attempt < self.retry.max_attempts {
                            hygcn_obs::count(hygcn_obs::Counter::StoreRetries, 1);
                            (self.sleeper)(self.retry.delay(attempt));
                            continue;
                        }
                        return Err(DseError::store_io("append", path, &e));
                    }
                }
            }
        }
        self.records.insert(rec.key, rec);
        Ok(())
    }
}

/// What a read-only [`fsck`] scan found.
#[derive(Debug, Clone, PartialEq)]
pub struct FsckReport {
    /// File size in bytes (0 when absent).
    pub bytes: u64,
    /// Non-blank lines scanned.
    pub lines: usize,
    /// Lines that parsed (and, when checksummed, verified).
    pub valid: usize,
    /// Distinct keys among the valid lines.
    pub unique: usize,
    /// Valid lines superseded by a later line with the same key.
    pub duplicates: usize,
    /// Valid lines carrying a verified `crc` field.
    pub checksummed: usize,
    /// Whether the file ends in a torn (unparseable, newline-less) tail.
    pub torn_tail: bool,
    /// Damaged complete lines.
    pub quarantined: Vec<QuarantinedLine>,
}

impl FsckReport {
    /// Whether the store needs no repair.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && !self.torn_tail && self.duplicates == 0
    }
}

struct Scan {
    report: FsckReport,
    records: BTreeMap<u64, StoreRecord>,
    torn_line: Option<String>,
}

fn scan(content: &str) -> Scan {
    let lines: Vec<&str> = content.lines().collect();
    let mut report = FsckReport {
        bytes: content.len() as u64,
        lines: 0,
        valid: 0,
        unique: 0,
        duplicates: 0,
        checksummed: 0,
        torn_tail: false,
        quarantined: Vec::new(),
    };
    let mut records: BTreeMap<u64, StoreRecord> = BTreeMap::new();
    let mut torn_line = None;
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        report.lines += 1;
        match StoreRecord::parse_line_checked(line) {
            Ok((rec, checksummed)) => {
                report.valid += 1;
                report.checksummed += usize::from(checksummed);
                if records.insert(rec.key, rec).is_some() {
                    report.duplicates += 1;
                }
            }
            Err(_) if i + 1 == lines.len() && !content.ends_with('\n') => {
                report.torn_tail = true;
                torn_line = Some(line.to_string());
            }
            Err(e) => report.quarantined.push(QuarantinedLine {
                line_no: i + 1,
                line: line.to_string(),
                reason: match e {
                    DseError::Store(m) => m,
                    other => other.to_string(),
                },
            }),
        }
    }
    report.unique = records.len();
    Scan {
        report,
        records,
        torn_line,
    }
}

/// Read-only integrity check of a store file: parses and checksums every
/// line without modifying anything (unlike [`ResultStore::open_with`],
/// which truncates a torn tail). An absent file scans as empty-and-clean.
///
/// # Errors
///
/// [`DseError::StoreIo`] when the file cannot be read.
pub fn fsck(path: &Path, io: &dyn StoreIo) -> Result<FsckReport, DseError> {
    let content = io
        .read(path)
        .map_err(|e| DseError::store_io("open", path, &e))?
        .unwrap_or_default();
    Ok(scan(&content).report)
}

/// What [`salvage`] did.
#[derive(Debug, Clone, PartialEq)]
pub struct SalvageReport {
    /// Records surviving into the rewritten store.
    pub kept: usize,
    /// Damaged lines sidelined to the quarantine file.
    pub dropped: usize,
    /// Duplicate lines collapsed (last-write-wins).
    pub deduplicated: usize,
    /// Where the damaged lines went, when there were any.
    pub quarantine_path: Option<PathBuf>,
}

/// Repairs a store in place: damaged lines (including a torn tail) are
/// appended to `<store>.quarantine`, and the store is rewritten
/// **canonically** — every surviving record checksummed, one line per
/// key in ascending key order. Canonical form makes salvage idempotent
/// (a second run is byte-identical) and a salvaged store deterministic
/// regardless of the append order that produced it. Record keys are
/// untouched, so cached campaigns resume exactly as before.
///
/// An absent file is left absent.
///
/// # Errors
///
/// [`DseError::StoreIo`] when reading, sidelining, or rewriting fails.
pub fn salvage(path: &Path, io: &dyn StoreIo) -> Result<SalvageReport, DseError> {
    let _obs = hygcn_obs::span(hygcn_obs::Phase::StoreCompact);
    let Some(content) = io
        .read(path)
        .map_err(|e| DseError::store_io("open", path, &e))?
    else {
        return Ok(SalvageReport {
            kept: 0,
            dropped: 0,
            deduplicated: 0,
            quarantine_path: None,
        });
    };
    let Scan {
        report,
        records,
        torn_line,
    } = scan(&content);

    let mut damaged: Vec<&str> = report.quarantined.iter().map(|q| q.line.as_str()).collect();
    if let Some(torn) = &torn_line {
        damaged.push(torn);
    }
    let mut quarantine_path = None;
    if !damaged.is_empty() {
        let qpath = PathBuf::from(format!("{}.quarantine", path.display()));
        let mut bytes = String::new();
        for line in &damaged {
            bytes.push_str(line);
            bytes.push('\n');
        }
        io.append(&qpath, bytes.as_bytes())
            .map_err(|e| DseError::store_io("append", &qpath, &e))?;
        quarantine_path = Some(qpath);
    }

    let mut canonical = String::new();
    for rec in records.values() {
        canonical.push_str(&rec.to_line());
        canonical.push('\n');
    }
    io.rewrite(path, canonical.as_bytes())
        .map_err(|e| DseError::store_io("rewrite", path, &e))?;
    Ok(SalvageReport {
        kept: records.len(),
        dropped: damaged.len(),
        deduplicated: report.duplicates,
        quarantine_path,
    })
}

/// Summary statistics for `hygcn store stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreStats {
    /// Loadable records (after last-write-wins dedup).
    pub records: usize,
    /// File size in bytes.
    pub bytes: u64,
    /// Records whose line carries a verified checksum.
    pub checksummed: usize,
    /// Damaged lines a tolerant open would skip.
    pub quarantined: usize,
    /// Whether the file ends in a torn tail.
    pub torn_tail: bool,
    /// Record counts per backend id (from report provenance; the cycle
    /// and seed paths store none and share the `cycle` bucket), sorted
    /// by id.
    pub per_backend: Vec<(String, usize)>,
}

/// Read-only store statistics: record/byte counts, per-backend record
/// counts, and damage tallies. An absent file reports all zeros.
///
/// # Errors
///
/// [`DseError::StoreIo`] when the file cannot be read.
pub fn stats(path: &Path, io: &dyn StoreIo) -> Result<StoreStats, DseError> {
    let content = io
        .read(path)
        .map_err(|e| DseError::store_io("open", path, &e))?
        .unwrap_or_default();
    let Scan {
        report, records, ..
    } = scan(&content);
    let mut per_backend: BTreeMap<String, usize> = BTreeMap::new();
    for rec in records.values() {
        *per_backend.entry(rec.backend_id().to_string()).or_insert(0) += 1;
    }
    Ok(StoreStats {
        records: records.len(),
        bytes: report.bytes,
        checksummed: report.checksummed,
        quarantined: report.quarantined.len(),
        torn_tail: report.torn_tail,
        per_backend: per_backend.into_iter().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store_io::{Fault, FaultPlan, FaultyIo};
    use std::sync::Mutex;
    use std::time::Duration;

    fn rec(key: u64) -> StoreRecord {
        StoreRecord {
            key,
            label: "IB@0.1/GCN/aggbuf-mb=4".into(),
            graph_hash: 0xDEAD_BEEF,
            cycles: 123_456,
            time_s: 1.23456e-4,
            energy_j: 0.00789,
            dram_bytes: 987_654,
            report_json: "{\"cycles\": 123456,\"channels\": 8}".into(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("hygcn-dse-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(format!("{}.quarantine", path.display())).ok();
        path
    }

    /// A sleeper that records instead of sleeping — retry tests stay
    /// wall-clock-free.
    fn recording_sleeper() -> (Sleeper, Arc<Mutex<Vec<Duration>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let writer = log.clone();
        let sleeper: Sleeper = Arc::new(move |d| writer.lock().unwrap().push(d));
        (sleeper, log)
    }

    #[test]
    fn record_round_trips_through_its_line() {
        let r = rec(0xABCD);
        let line = r.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(StoreRecord::parse_line(&line).unwrap(), r);
        // The line is checksummed, and the parser knows it.
        let (parsed, checksummed) = StoreRecord::parse_line_checked(&line).unwrap();
        assert_eq!(parsed, r);
        assert!(checksummed);
    }

    #[test]
    fn legacy_checksum_less_lines_still_parse() {
        let r = rec(0xABCD);
        let legacy = r.legacy_body();
        let (parsed, checksummed) = StoreRecord::parse_line_checked(&legacy).unwrap();
        assert_eq!(parsed, r);
        assert!(!checksummed, "legacy lines load unverified");
    }

    #[test]
    fn flipped_bytes_fail_the_checksum() {
        let line = rec(7).to_line();
        // Flip one digit of the cycles field.
        let flipped = line.replacen("123456", "123457", 1);
        assert_ne!(line, flipped);
        match StoreRecord::parse_line(&flipped) {
            Err(DseError::Store(m)) => assert!(m.contains("checksum mismatch"), "{m}"),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn labels_with_quotes_round_trip() {
        let mut r = rec(1);
        r.label = "odd \"label\" with \\ backslash".into();
        assert_eq!(StoreRecord::parse_line(&r.to_line()).unwrap(), r);
    }

    #[test]
    fn backend_id_comes_from_report_provenance() {
        let mut r = rec(1);
        assert_eq!(r.backend_id(), "cycle");
        r.report_json = "{\"cycles\": 5,\"backend\": \"analytical\"}".into();
        assert_eq!(r.backend_id(), "analytical");
    }

    #[test]
    fn file_store_persists_and_reloads() {
        let path = tmp("roundtrip.jsonl");
        {
            let mut store = ResultStore::open(&path).unwrap();
            assert!(store.is_empty());
            store.append(rec(1)).unwrap();
            store.append(rec(2)).unwrap();
            store.append(rec(1)).unwrap(); // duplicate: no-op
            assert_eq!(store.len(), 2);
        }
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(1).unwrap(), &rec(1));
        assert_eq!(store.get(3), None);
        assert!(store.quarantined().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_final_newline_is_repaired_so_appends_cannot_fuse() {
        // A kill that lost only the record terminator: the record is
        // whole, so it must survive — and the reopened store must not
        // concatenate the next append onto the unterminated line.
        let path = tmp("no-terminator.jsonl");
        std::fs::write(&path, rec(1).to_line()).unwrap();
        {
            let mut store = ResultStore::open(&path).unwrap();
            assert_eq!(store.len(), 1);
            assert!(store.quarantined().is_empty());
            store.append(rec(2)).unwrap();
        }
        let reopened = ResultStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 2);
        assert!(reopened.quarantined().is_empty());
        assert_eq!(reopened.get(1).unwrap(), &rec(1));
        assert_eq!(reopened.get(2).unwrap(), &rec(2));
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2);
        assert!(content.ends_with('\n'));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_lines_are_quarantined_not_fatal() {
        let path = tmp("corrupt.jsonl");
        std::fs::write(&path, format!("{{\"key\":\"zz\"}}\n{}\n", rec(4).to_line())).unwrap();
        let store = ResultStore::open(&path).unwrap();
        // The good record loads; the damaged line is preserved on disk
        // and reported.
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(4).unwrap(), &rec(4));
        assert_eq!(store.quarantined().len(), 1);
        assert_eq!(store.quarantined()[0].line_no, 1);
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .contains("{\"key\":\"zz\"}"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_keys_resolve_last_write_wins() {
        let path = tmp("dups.jsonl");
        let mut newer = rec(1);
        newer.cycles = 999;
        std::fs::write(
            &path,
            format!("{}\n{}\n", rec(1).to_line(), newer.to_line()),
        )
        .unwrap();
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(1).unwrap().cycles, 999, "the later line wins");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_line_is_discarded_and_truncated() {
        let path = tmp("torn.jsonl");
        // Two complete records plus a torn tail (a kill mid-append: no
        // trailing newline).
        let torn = &rec(3).to_line()[..40];
        std::fs::write(
            &path,
            format!("{}\n{}\n{torn}", rec(1).to_line(), rec(2).to_line()),
        )
        .unwrap();
        let mut store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert!(
            store.quarantined().is_empty(),
            "a torn tail is expected damage"
        );
        // The torn bytes are gone from disk, so a fresh append starts on
        // its own line and the file round-trips cleanly.
        store.append(rec(3)).unwrap();
        let reopened = ResultStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 3);
        assert_eq!(reopened.get(3).unwrap(), &rec(3));
        // A torn line mid-file (followed by a newline) is quarantined,
        // not fatal: the records after it still load.
        std::fs::write(&path, format!("{torn}\n{}\n", rec(1).to_line())).unwrap();
        let mixed = ResultStore::open(&path).unwrap();
        assert_eq!(mixed.len(), 1);
        assert_eq!(mixed.quarantined().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn labels_with_newlines_round_trip() {
        let mut r = rec(9);
        r.label = "two\nlines".into();
        let line = r.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(StoreRecord::parse_line(&line).unwrap(), r);
    }

    #[test]
    fn in_memory_store_never_touches_disk() {
        let mut store = ResultStore::in_memory();
        store.append(rec(7)).unwrap();
        assert_eq!(store.path(), None);
        assert_eq!(store.get(7).unwrap().cycles, 123_456);
    }

    #[test]
    fn append_retries_transient_faults_with_backoff() {
        let path = tmp("retry.jsonl");
        let io = Arc::new(FaultyIo::new(FaultPlan {
            faults: vec![
                Fault::TransientAppend { op: 0 },
                Fault::ShortAppend { op: 1, written: 10 },
            ],
        }));
        let (sleeper, slept) = recording_sleeper();
        let retry = RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 10,
        };
        let mut store = ResultStore::open_with(&path, io, retry, sleeper).unwrap();
        // Attempt 1 fails transiently, attempt 2 tears 10 bytes (rolled
        // back), attempt 3 succeeds.
        store.append(rec(1)).unwrap();
        assert_eq!(
            slept.lock().unwrap().as_slice(),
            &[Duration::from_millis(10), Duration::from_millis(20)],
            "deterministic exponential backoff, no wall clock"
        );
        // The rollback kept the file clean: exactly one record, parseable.
        let reopened = ResultStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.get(1).unwrap(), &rec(1));
        assert!(reopened.quarantined().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn permanent_append_errors_carry_path_and_operation() {
        let path = tmp("enospc.jsonl");
        let io = Arc::new(FaultyIo::new(FaultPlan {
            faults: vec![Fault::DiskFull { op: 0 }],
        }));
        let (sleeper, slept) = recording_sleeper();
        let mut store = ResultStore::open_with(&path, io, RetryPolicy::default(), sleeper).unwrap();
        match store.append(rec(1)) {
            Err(DseError::StoreIo {
                op,
                path: p,
                transient,
                error,
            }) => {
                assert_eq!(op, "append");
                assert!(p.contains("enospc.jsonl"), "{p}");
                assert!(!transient, "a full disk is not retryable");
                assert!(error.contains("no space left"), "{error}");
            }
            other => panic!("expected StoreIo error, got {other:?}"),
        }
        assert!(
            slept.lock().unwrap().is_empty(),
            "permanent errors never retry"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsck_reports_damage_without_modifying_the_file() {
        let path = tmp("fsck.jsonl");
        let mut newer = rec(1);
        newer.cycles = 999;
        let torn = &rec(5).to_line()[..30];
        let content = format!(
            "{}\n{}\nGARBAGE\n{}\n{torn}",
            rec(1).to_line(),
            rec(2).to_line(),
            newer.to_line()
        );
        std::fs::write(&path, &content).unwrap();
        let report = fsck(&path, &RealIo).unwrap();
        assert_eq!((report.lines, report.valid, report.unique), (5, 3, 2));
        assert_eq!(report.duplicates, 1);
        assert_eq!(report.checksummed, 3);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].line_no, 3);
        assert!(report.torn_tail);
        assert!(!report.is_clean());
        // Read-only: the file is byte-identical, torn tail included.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), content);

        // A healthy store is clean; an absent one scans empty-and-clean.
        std::fs::write(&path, format!("{}\n", rec(1).to_line())).unwrap();
        assert!(fsck(&path, &RealIo).unwrap().is_clean());
        std::fs::remove_file(&path).ok();
        let absent = fsck(&path, &RealIo).unwrap();
        assert_eq!((absent.bytes, absent.lines), (0, 0));
        assert!(absent.is_clean());
    }

    #[test]
    fn salvage_sidelines_damage_and_rewrites_canonically() {
        let path = tmp("salvage.jsonl");
        let mut newer = rec(2);
        newer.cycles = 999;
        let torn = &rec(5).to_line()[..30];
        // Deliberately out of key order, with damage and a duplicate.
        std::fs::write(
            &path,
            format!(
                "{}\nBROKEN LINE\n{}\n{}\n{torn}",
                rec(2).to_line(),
                rec(1).to_line(),
                newer.to_line()
            ),
        )
        .unwrap();
        let report = salvage(&path, &RealIo).unwrap();
        assert_eq!(
            (report.kept, report.dropped, report.deduplicated),
            (2, 2, 1)
        );
        let qpath = report.quarantine_path.unwrap();
        let sidelined = std::fs::read_to_string(&qpath).unwrap();
        assert!(sidelined.contains("BROKEN LINE"));
        assert!(sidelined.contains(torn));

        // The rewritten store is canonical: key-ordered, checksummed,
        // fully loadable, last-write-wins applied.
        let healed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            healed,
            format!("{}\n{}\n", rec(1).to_line(), newer.to_line())
        );
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(2).unwrap().cycles, 999);

        // Idempotent: a second salvage changes nothing and drops nothing.
        let again = salvage(&path, &RealIo).unwrap();
        assert_eq!((again.kept, again.dropped), (2, 0));
        assert_eq!(again.quarantine_path, None);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), healed);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&qpath).ok();
    }

    #[test]
    fn stats_count_records_bytes_and_backends() {
        let path = tmp("stats.jsonl");
        let mut analytical = rec(9);
        analytical.report_json = "{\"cycles\": 5,\"backend\": \"analytical\"}".into();
        let content = format!(
            "{}\n{}\n{}\nJUNK\n",
            rec(1).to_line(),
            rec(2).to_line(),
            analytical.to_line()
        );
        std::fs::write(&path, &content).unwrap();
        let s = stats(&path, &RealIo).unwrap();
        assert_eq!(s.records, 3);
        assert_eq!(s.bytes, content.len() as u64);
        assert_eq!(s.checksummed, 3);
        assert_eq!(s.quarantined, 1);
        assert!(!s.torn_tail);
        assert_eq!(
            s.per_backend,
            vec![("analytical".to_string(), 1), ("cycle".to_string(), 2)]
        );
        std::fs::remove_file(&path).ok();
    }
}
