//! The on-disk campaign result store — `campaign.jsonl`.
//!
//! One line per completed design point, appended as soon as the point
//! finishes (so a killed campaign loses at most the in-flight batch), and
//! keyed by the point's stable cache key. Opening the store re-reads all
//! lines, which is what makes campaigns resumable: points whose key is
//! already present are never simulated again.
//!
//! Line shape (a strict subset of JSON, hand-emitted and hand-parsed so
//! the crate stays dependency-free):
//!
//! ```text
//! {"key":"<16 hex>","label":"...","graph":"<16 hex>","cycles":N,
//!  "time_s":F,"energy_j":F,"dram_bytes":N,"report":{...}}
//! ```
//!
//! `report` is [`hygcn_core::SimReport::to_json_compact`] verbatim — the
//! stored report of a point is bit-identical to what `hygcn simulate`
//! serializes for the same configuration and workload.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::DseError;

/// One completed design point as persisted in the store.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreRecord {
    /// The point's stable cache key.
    pub key: u64,
    /// Human-readable point label (provenance only; the key decides
    /// identity).
    pub label: String,
    /// Content hash of the built graph (provenance).
    pub graph_hash: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Simulated seconds.
    pub time_s: f64,
    /// Total dynamic energy in joules.
    pub energy_j: f64,
    /// Total DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// The full report, compact single-line JSON.
    pub report_json: String,
}

impl StoreRecord {
    fn to_line(&self) -> String {
        format!(
            "{{\"key\":\"{:016x}\",\"label\":\"{}\",\"graph\":\"{:016x}\",\"cycles\":{},\"time_s\":{:?},\"energy_j\":{:?},\"dram_bytes\":{},\"report\":{}}}",
            self.key,
            escape(&self.label),
            self.graph_hash,
            self.cycles,
            self.time_s,
            self.energy_j,
            self.dram_bytes,
            self.report_json,
        )
    }

    fn parse_line(line: &str) -> Result<Self, DseError> {
        let bad = |what: &str| DseError::Store(format!("{what} in line: {line}"));
        let key = u64::from_str_radix(
            &field_str(line, "key").ok_or_else(|| bad("missing key"))?,
            16,
        )
        .map_err(|_| bad("non-hex key"))?;
        let graph_hash = u64::from_str_radix(
            &field_str(line, "graph").ok_or_else(|| bad("missing graph"))?,
            16,
        )
        .map_err(|_| bad("non-hex graph hash"))?;
        let label = unescape(&field_str(line, "label").ok_or_else(|| bad("missing label"))?);
        let cycles = field_raw(line, "cycles")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("missing cycles"))?;
        let time_s = field_raw(line, "time_s")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("missing time_s"))?;
        let energy_j = field_raw(line, "energy_j")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("missing energy_j"))?;
        let dram_bytes = field_raw(line, "dram_bytes")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("missing dram_bytes"))?;
        // The report object runs to the line's final closing brace.
        let marker = "\"report\":";
        let at = line.find(marker).ok_or_else(|| bad("missing report"))?;
        let report_json = line[at + marker.len()..line.len() - 1].to_string();
        if !report_json.starts_with('{') || !report_json.ends_with('}') {
            return Err(bad("malformed report object"));
        }
        Ok(Self {
            key,
            label,
            graph_hash,
            cycles,
            time_s,
            energy_j,
            dram_bytes,
            report_json,
        })
    }
}

/// Minimal escaping for labels (backslash, double quote, newline — a
/// raw newline would split the one-record-per-line format).
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(next) => out.push(next),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Extracts a `"name":"..."` string field (quote-aware for escapes).
fn field_str(line: &str, name: &str) -> Option<String> {
    let marker = format!("\"{name}\":\"");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => return Some(rest[..end].to_string()),
            _ => end += 1,
        }
    }
    None
}

/// Extracts a bare `"name":value` scalar field (up to `,` or `}`).
fn field_raw(line: &str, name: &str) -> Option<String> {
    let marker = format!("\"{name}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].to_string())
}

/// An append-only, keyed store of completed points; optionally backed by
/// a `campaign.jsonl` file.
#[derive(Debug)]
pub struct ResultStore {
    path: Option<PathBuf>,
    records: BTreeMap<u64, StoreRecord>,
}

impl ResultStore {
    /// A store with no backing file (results live for this process only —
    /// what the legacy `sweep` alias uses).
    pub fn in_memory() -> Self {
        Self {
            path: None,
            records: BTreeMap::new(),
        }
    }

    /// Opens (or creates) a file-backed store, loading every existing
    /// record.
    ///
    /// A campaign killed mid-append can leave a *torn* final line — a
    /// partial record with no trailing newline. That is exactly the state
    /// the store exists to recover from, so an unparseable final line in
    /// a file that does not end with `\n` is discarded (and truncated
    /// away, so the next append cannot concatenate onto it); the point it
    /// belonged to simply re-runs.
    ///
    /// # Errors
    ///
    /// [`DseError::Store`] on I/O failure or a malformed *complete* line
    /// — real corruption is reported, never silently skipped.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, DseError> {
        let path = path.as_ref().to_path_buf();
        let mut records = BTreeMap::new();
        match std::fs::read_to_string(&path) {
            Ok(content) => {
                let lines: Vec<&str> = content.lines().filter(|l| !l.trim().is_empty()).collect();
                for (i, line) in lines.iter().enumerate() {
                    match StoreRecord::parse_line(line) {
                        Ok(rec) => {
                            records.insert(rec.key, rec);
                        }
                        Err(_) if i + 1 == lines.len() && !content.ends_with('\n') => {
                            // Torn tail from a killed append: drop it on
                            // disk too, so future appends start clean.
                            let keep = content.len() - line.len();
                            std::fs::OpenOptions::new()
                                .write(true)
                                .open(&path)
                                .and_then(|f| f.set_len(keep as u64))
                                .map_err(|e| {
                                    DseError::Store(format!(
                                        "truncating torn tail of {}: {e}",
                                        path.display()
                                    ))
                                })?;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(DseError::Store(format!("reading {}: {e}", path.display()))),
        }
        Ok(Self {
            path: Some(path),
            records,
        })
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Looks up a completed point by key.
    pub fn get(&self, key: u64) -> Option<&StoreRecord> {
        self.records.get(&key)
    }

    /// Inserts a record and appends it to the backing file immediately
    /// (streaming: a campaign killed mid-run keeps everything already
    /// appended). Re-inserting an existing key is a no-op.
    pub fn append(&mut self, rec: StoreRecord) -> Result<(), DseError> {
        if self.records.contains_key(&rec.key) {
            return Ok(());
        }
        if let Some(path) = &self.path {
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| DseError::Store(format!("opening {}: {e}", path.display())))?;
            writeln!(file, "{}", rec.to_line())
                .map_err(|e| DseError::Store(format!("appending to {}: {e}", path.display())))?;
        }
        self.records.insert(rec.key, rec);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key: u64) -> StoreRecord {
        StoreRecord {
            key,
            label: "IB@0.1/GCN/aggbuf-mb=4".into(),
            graph_hash: 0xDEAD_BEEF,
            cycles: 123_456,
            time_s: 1.23456e-4,
            energy_j: 0.00789,
            dram_bytes: 987_654,
            report_json: "{\"cycles\": 123456,\"channels\": 8}".into(),
        }
    }

    #[test]
    fn record_round_trips_through_its_line() {
        let r = rec(0xABCD);
        let line = r.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(StoreRecord::parse_line(&line).unwrap(), r);
    }

    #[test]
    fn labels_with_quotes_round_trip() {
        let mut r = rec(1);
        r.label = "odd \"label\" with \\ backslash".into();
        assert_eq!(StoreRecord::parse_line(&r.to_line()).unwrap(), r);
    }

    #[test]
    fn file_store_persists_and_reloads() {
        let dir = std::env::temp_dir().join("hygcn-dse-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        std::fs::remove_file(&path).ok();
        {
            let mut store = ResultStore::open(&path).unwrap();
            assert!(store.is_empty());
            store.append(rec(1)).unwrap();
            store.append(rec(2)).unwrap();
            store.append(rec(1)).unwrap(); // duplicate: no-op
            assert_eq!(store.len(), 2);
        }
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(1).unwrap(), &rec(1));
        assert_eq!(store.get(3), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_lines_are_reported() {
        let dir = std::env::temp_dir().join("hygcn-dse-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.jsonl");
        std::fs::write(&path, "{\"key\":\"zz\"}\n").unwrap();
        assert!(matches!(ResultStore::open(&path), Err(DseError::Store(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_line_is_discarded_and_truncated() {
        let dir = std::env::temp_dir().join("hygcn-dse-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        // Two complete records plus a torn tail (a kill mid-append: no
        // trailing newline).
        let torn = &rec(3).to_line()[..40];
        std::fs::write(
            &path,
            format!("{}\n{}\n{torn}", rec(1).to_line(), rec(2).to_line()),
        )
        .unwrap();
        let mut store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        // The torn bytes are gone from disk, so a fresh append starts on
        // its own line and the file round-trips cleanly.
        store.append(rec(3)).unwrap();
        let reopened = ResultStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 3);
        assert_eq!(reopened.get(3).unwrap(), &rec(3));
        // A torn line mid-file (followed by a newline) is NOT tolerated.
        std::fs::write(&path, format!("{torn}\n{}\n", rec(1).to_line())).unwrap();
        assert!(matches!(ResultStore::open(&path), Err(DseError::Store(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn labels_with_newlines_round_trip() {
        let mut r = rec(9);
        r.label = "two\nlines".into();
        let line = r.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(StoreRecord::parse_line(&line).unwrap(), r);
    }

    #[test]
    fn in_memory_store_never_touches_disk() {
        let mut store = ResultStore::in_memory();
        store.append(rec(7)).unwrap();
        assert_eq!(store.path(), None);
        assert_eq!(store.get(7).unwrap().cycles, 123_456);
    }
}
