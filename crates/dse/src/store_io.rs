//! The injectable I/O seam under [`crate::store::ResultStore`].
//!
//! Every byte the store reads or writes flows through a [`StoreIo`]
//! object. Production code uses [`RealIo`] (plain `std::fs`); the
//! durability test harness substitutes [`FaultyIo`], which wraps the
//! real implementation and injects faults — short/torn writes, transient
//! errors, a full disk, or a hard kill at an exact byte boundary —
//! according to a deterministic [`FaultPlan`]. Because the plan is data,
//! a crash-point sweep can enumerate *every* interesting failure point
//! and assert the store's recovery contract at each one, with no
//! wall-clock or process spawning involved.
//!
//! The seam must be behavior-preserving: a `FaultyIo` with an empty plan
//! is byte-for-byte identical to `RealIo` (a property test in the crate
//! pins this).

use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// The file operations [`crate::store::ResultStore`] needs, as a seam.
///
/// `append` must be all-or-nothing *from the caller's perspective*: on
/// `Err` the implementation may have written a prefix of `bytes` (a torn
/// write — exactly what a real kill produces), and the store is
/// responsible for rolling that back (via [`StoreIo::truncate`]) or
/// recovering on the next open.
pub trait StoreIo: std::fmt::Debug + Send + Sync {
    /// Reads the whole file; `Ok(None)` when it does not exist.
    fn read(&self, path: &Path) -> io::Result<Option<String>>;
    /// Current file length in bytes; 0 when the file does not exist.
    fn len(&self, path: &Path) -> io::Result<u64>;
    /// Appends `bytes`, creating the file if needed.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Truncates the file to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Atomically replaces the file's contents (write-temp-then-rename).
    fn rewrite(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
}

/// The production [`StoreIo`]: plain `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn read(&self, path: &Path) -> io::Result<Option<String>> {
        match std::fs::read_to_string(path) {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        match std::fs::metadata(path) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(bytes)?;
        file.flush()
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .write(true)
            .open(path)?
            .set_len(len)
    }

    fn rewrite(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)
    }
}

/// One injected fault. Append operations are numbered from 0 in the
/// order [`FaultyIo`] sees them; byte offsets count the cumulative
/// append stream (bytes successfully persisted by appends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Append op `op` fails with a *transient* error
    /// (`ErrorKind::Interrupted`) after persisting nothing. A retrying
    /// caller succeeds on the next attempt.
    TransientAppend {
        /// 0-based append-operation index.
        op: usize,
    },
    /// Append op `op` persists only its first `written` bytes, then
    /// fails transiently — a torn write the caller must roll back.
    ShortAppend {
        /// 0-based append-operation index.
        op: usize,
        /// Bytes persisted before the failure.
        written: usize,
    },
    /// Append op `op` fails like a full disk: nothing persisted,
    /// permanent error (retrying cannot help).
    DiskFull {
        /// 0-based append-operation index.
        op: usize,
    },
    /// Hard process death once the cumulative append stream reaches
    /// `byte`: the crossing append persists exactly the bytes below the
    /// boundary, and every subsequent operation (including the rollback
    /// truncate) fails — the torn tail stays on disk, exactly as a real
    /// kill leaves it.
    KillAtByte {
        /// Cumulative appended-byte boundary at which the process dies.
        byte: u64,
    },
}

/// A deterministic fault schedule for [`FaultyIo`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The faults to inject. Op-indexed faults fire when their append
    /// op comes up; [`Fault::KillAtByte`] fires when the append stream
    /// crosses its boundary.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan injecting nothing (the differential-test baseline).
    pub fn none() -> Self {
        Self::default()
    }

    /// A single hard kill at cumulative append byte `byte`.
    pub fn kill_at_byte(byte: u64) -> Self {
        Self {
            faults: vec![Fault::KillAtByte { byte }],
        }
    }

    /// Parses the CLI `--fault-plan` grammar: comma-separated
    /// `kill-at-byte=N`, `transient-append=OP`, `short-append=OP:BYTES`,
    /// `disk-full=OP`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut faults = Vec::new();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (kind, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault '{part}' is not KIND=VALUE"))?;
            let bad = |what: &str| format!("fault '{part}': {what}");
            match kind.trim() {
                "kill-at-byte" => faults.push(Fault::KillAtByte {
                    byte: value.parse().map_err(|_| bad("bad byte offset"))?,
                }),
                "transient-append" => faults.push(Fault::TransientAppend {
                    op: value.parse().map_err(|_| bad("bad op index"))?,
                }),
                "disk-full" => faults.push(Fault::DiskFull {
                    op: value.parse().map_err(|_| bad("bad op index"))?,
                }),
                "short-append" => {
                    let (op, written) = value
                        .split_once(':')
                        .ok_or_else(|| bad("expected OP:BYTES"))?;
                    faults.push(Fault::ShortAppend {
                        op: op.parse().map_err(|_| bad("bad op index"))?,
                        written: written.parse().map_err(|_| bad("bad byte count"))?,
                    });
                }
                other => {
                    return Err(format!(
                        "unknown fault kind '{other}' (kill-at-byte/transient-append/\
                         short-append/disk-full)"
                    ))
                }
            }
        }
        Ok(Self { faults })
    }
}

#[derive(Debug, Default)]
struct FaultState {
    /// Append operations attempted so far.
    append_ops: usize,
    /// Bytes successfully persisted by appends so far.
    appended: u64,
    /// Set once a [`Fault::KillAtByte`] fires; everything fails after.
    killed: bool,
}

/// A [`StoreIo`] wrapping [`RealIo`] with deterministic fault injection.
///
/// With an empty [`FaultPlan`] this is behavior- and byte-identical to
/// [`RealIo`]. Thread-safe: the fault state sits behind a mutex, so the
/// op/byte accounting is exact even when campaigns append from worker
/// threads.
#[derive(Debug)]
pub struct FaultyIo {
    inner: RealIo,
    plan: FaultPlan,
    state: Mutex<FaultState>,
}

impl FaultyIo {
    /// A faulty seam executing `plan` over the real filesystem.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            inner: RealIo,
            plan,
            state: Mutex::new(FaultState::default()),
        }
    }

    /// Whether a [`Fault::KillAtByte`] has fired.
    pub fn is_killed(&self) -> bool {
        // Fault state is plain data — a panic mid-update cannot leave it
        // logically torn, so a poisoned lock is still readable.
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .killed
    }

    fn dead() -> io::Error {
        io::Error::other("fault injection: process killed")
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.is_killed() {
            Err(Self::dead())
        } else {
            Ok(())
        }
    }
}

impl StoreIo for FaultyIo {
    fn read(&self, path: &Path) -> io::Result<Option<String>> {
        self.check_alive()?;
        self.inner.read(path)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        self.check_alive()?;
        self.inner.len(path)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.killed {
            return Err(Self::dead());
        }
        let op = state.append_ops;
        state.append_ops += 1;

        // A kill boundary inside (or at the start of) this append wins
        // over op-indexed faults: the process is dead.
        for f in &self.plan.faults {
            if let Fault::KillAtByte { byte } = *f {
                if !state.killed && state.appended + bytes.len() as u64 > byte {
                    let partial = byte.saturating_sub(state.appended) as usize;
                    if partial > 0 {
                        // partial < bytes.len() by the boundary check
                        // above; fall back to the whole buffer if not.
                        self.inner
                            .append(path, bytes.get(..partial).unwrap_or(bytes))?;
                    }
                    state.appended += partial as u64;
                    state.killed = true;
                    return Err(io::Error::other(format!(
                        "fault injection: killed at append byte {byte}"
                    )));
                }
            }
        }
        for f in &self.plan.faults {
            match *f {
                Fault::TransientAppend { op: o } if o == op => {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        format!("fault injection: transient failure on append op {op}"),
                    ));
                }
                Fault::ShortAppend { op: o, written } if o == op => {
                    let written = written.min(bytes.len());
                    self.inner
                        .append(path, bytes.get(..written).unwrap_or(bytes))?;
                    state.appended += written as u64;
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        format!(
                            "fault injection: short write on append op {op} \
                             ({written} of {} bytes)",
                            bytes.len()
                        ),
                    ));
                }
                Fault::DiskFull { op: o } if o == op => {
                    return Err(io::Error::other(format!(
                        "fault injection: no space left on device (append op {op})"
                    )));
                }
                _ => {}
            }
        }
        self.inner.append(path, bytes)?;
        state.appended += bytes.len() as u64;
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.check_alive()?;
        self.inner.truncate(path, len)
    }

    fn rewrite(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.check_alive()?;
        self.inner.rewrite(path, bytes)
    }
}

/// Whether an I/O error is worth retrying: interruption and timeout
/// kinds are; a full disk, permission problems, and injected kills are
/// not.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// Bounded retry-with-exponential-backoff, shared by store appends and
/// backend evaluations. Purely declarative — delays are executed through
/// an injectable [`Sleeper`], so tests assert the schedule without
/// consuming wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (>= 1).
    pub max_attempts: u32,
    /// Backoff before attempt `n+1` is `base_delay_ms << (n-1)`.
    pub base_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay_ms: 10,
        }
    }
}

impl RetryPolicy {
    /// No retries: every failure is final on the first attempt.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_delay_ms: 0,
        }
    }

    /// The backoff to sleep after failed attempt `attempt` (1-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        Duration::from_millis(self.base_delay_ms.saturating_mul(1u64 << shift))
    }
}

/// How retry delays are executed; tests inject a recorder instead of
/// [`std::thread::sleep`].
pub type Sleeper = Arc<dyn Fn(Duration) + Send + Sync>;

/// The production sleeper: [`std::thread::sleep`].
pub fn default_sleeper() -> Sleeper {
    Arc::new(std::thread::sleep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("hygcn-store-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::remove_file(&path).ok();
        path
    }

    #[test]
    fn real_io_reads_absent_files_as_none() {
        let path = tmp("absent.jsonl");
        assert_eq!(RealIo.read(&path).unwrap(), None);
        assert_eq!(RealIo.len(&path).unwrap(), 0);
    }

    #[test]
    fn real_io_append_truncate_rewrite_round_trip() {
        let path = tmp("real.jsonl");
        RealIo.append(&path, b"hello ").unwrap();
        RealIo.append(&path, b"world").unwrap();
        assert_eq!(RealIo.read(&path).unwrap().unwrap(), "hello world");
        RealIo.truncate(&path, 5).unwrap();
        assert_eq!(RealIo.read(&path).unwrap().unwrap(), "hello");
        RealIo.rewrite(&path, b"replaced").unwrap();
        assert_eq!(RealIo.read(&path).unwrap().unwrap(), "replaced");
        assert_eq!(RealIo.len(&path).unwrap(), 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kill_at_byte_tears_the_crossing_write_and_poisons_the_rest() {
        let path = tmp("kill.jsonl");
        let io = FaultyIo::new(FaultPlan::kill_at_byte(7));
        io.append(&path, b"12345").unwrap(); // 5 bytes, below the boundary
        let err = io.append(&path, b"67890").unwrap_err(); // crosses at 7
        assert!(err.to_string().contains("killed"), "{err}");
        assert!(io.is_killed());
        // Exactly the bytes below the boundary persisted; the rollback
        // truncate fails too (the process is "dead"), so the torn tail
        // stays — the state a real kill leaves.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "1234567");
        assert!(io.truncate(&path, 5).is_err());
        assert!(io.append(&path, b"x").is_err());
        assert!(io.read(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn transient_and_short_appends_fail_with_retryable_kinds() {
        let path = tmp("transient.jsonl");
        let io = FaultyIo::new(FaultPlan {
            faults: vec![
                Fault::TransientAppend { op: 0 },
                Fault::ShortAppend { op: 1, written: 3 },
            ],
        });
        let e0 = io.append(&path, b"aaaa").unwrap_err();
        assert!(is_transient(&e0));
        assert_eq!(RealIo.len(&path).unwrap(), 0, "transient writes nothing");
        let e1 = io.append(&path, b"bbbb").unwrap_err();
        assert!(is_transient(&e1));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "bbb");
        // Op 2 carries no fault: succeeds.
        RealIo.truncate(&path, 0).unwrap();
        io.append(&path, b"cccc").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "cccc");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_full_is_permanent() {
        let path = tmp("enospc.jsonl");
        let io = FaultyIo::new(FaultPlan {
            faults: vec![Fault::DiskFull { op: 0 }],
        });
        let e = io.append(&path, b"data").unwrap_err();
        assert!(!is_transient(&e));
        assert!(e.to_string().contains("no space left"), "{e}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fault_plan_parses_the_cli_grammar() {
        let plan = FaultPlan::parse("kill-at-byte=120,transient-append=2").unwrap();
        assert_eq!(
            plan.faults,
            vec![
                Fault::KillAtByte { byte: 120 },
                Fault::TransientAppend { op: 2 }
            ]
        );
        let plan = FaultPlan::parse("short-append=1:40,disk-full=0").unwrap();
        assert_eq!(
            plan.faults,
            vec![
                Fault::ShortAppend { op: 1, written: 40 },
                Fault::DiskFull { op: 0 }
            ]
        );
        assert!(FaultPlan::parse("").unwrap().faults.is_empty());
        assert!(FaultPlan::parse("melt-cpu=1").is_err());
        assert!(FaultPlan::parse("kill-at-byte=x").is_err());
        assert!(FaultPlan::parse("short-append=3").is_err());
    }

    #[test]
    fn retry_policy_backoff_doubles_and_saturates() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 10,
        };
        assert_eq!(p.delay(1), Duration::from_millis(10));
        assert_eq!(p.delay(2), Duration::from_millis(20));
        assert_eq!(p.delay(3), Duration::from_millis(40));
        // Huge attempt numbers must not overflow.
        assert_eq!(p.delay(200), Duration::from_millis(10 << 16));
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }
}
