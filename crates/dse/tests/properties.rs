//! Property tests for the DSE subsystem's load-bearing invariants.
//!
//! The campaign cache key must be **stable** — identical across
//! processes/runs for equal inputs (it is persisted and compared on
//! resume) — and **discriminating**: any differing axis value must
//! change it. Degenerate campaigns must behave: an empty space errors
//! cleanly, and a 1-point campaign's stored report is bit-identical to a
//! direct `Simulator::simulate` of the same configuration — the tie into
//! the PR 2 golden/oracle harness.

use hygcn_core::config::{HyGcnConfig, PipelineMode};
use hygcn_core::Simulator;
use hygcn_dse::campaign::{Campaign, MODEL_SEED};
use hygcn_dse::space::{Axis, AxisValue, ConfigSpace, SpaceSample, WorkloadSpec};
use hygcn_dse::store::ResultStore;
use hygcn_dse::DseError;
use hygcn_gcn::model::{GcnModel, ModelKind};
use hygcn_graph::datasets::DatasetKey;
use proptest::prelude::*;

/// An arbitrary single axis value from the full axis vocabulary.
fn arb_axis_value() -> impl Strategy<Value = AxisValue> {
    prop_oneof![
        (1usize..64).prop_map(AxisValue::AggBufMb),
        (16usize..1024).prop_map(AxisValue::InputBufKb),
        (16usize..4096).prop_map(AxisValue::EdgeBufKb),
        prop_oneof![
            Just(PipelineMode::LatencyAware),
            Just(PipelineMode::EnergyAware),
            Just(PipelineMode::None),
        ]
        .prop_map(AxisValue::Pipeline),
        any::<bool>().prop_map(AxisValue::Coordination),
        any::<bool>().prop_map(AxisValue::Sparsity),
        (1usize..32).prop_map(AxisValue::SampleFactor),
        (1usize..64).prop_map(AxisValue::SimdCores),
        (1usize..16).prop_map(AxisValue::SystolicModules),
    ]
}

fn space_with(values: Vec<AxisValue>, scale_milli: u64, seed: u64) -> ConfigSpace {
    let mut space = ConfigSpace::new(
        vec![WorkloadSpec::dataset(
            DatasetKey::Ib,
            scale_milli as f64 / 1000.0,
            seed,
        )],
        vec![ModelKind::Gcn],
    );
    for (i, v) in values.into_iter().enumerate() {
        space = space.with_axis(Axis {
            name: format!("{}#{i}", v.axis_name()),
            values: vec![v],
        });
    }
    space
}

proptest! {
    /// Equal inputs hash equal — re-enumerating the same space in a
    /// fresh pass (fresh allocations, fresh maps — nothing address- or
    /// process-dependent can leak in) reproduces every key bit-for-bit.
    #[test]
    fn keys_reproduce_across_enumerations(
        values in proptest::collection::vec(arb_axis_value(), 0..4),
        scale_milli in 30u64..200,
        seed in 0u64..1000,
    ) {
        let a = space_with(values.clone(), scale_milli, seed).enumerate().unwrap();
        let b = space_with(values, scale_milli, seed).enumerate().unwrap();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.key, y.key);
            prop_assert_eq!(&x.config.canon(), &y.config.canon());
        }
    }

    /// Any differing axis value yields a different key (unless the two
    /// values normalize to the same configuration, e.g. sampling factors
    /// 0 and 1 — the dedup case, which must then produce EQUAL keys).
    #[test]
    fn differing_axis_value_changes_key(
        base in arb_axis_value(),
        other in arb_axis_value(),
    ) {
        let mut cfg_a = HyGcnConfig::default();
        base.apply(&mut cfg_a);
        let mut cfg_b = HyGcnConfig::default();
        other.apply(&mut cfg_b);
        let point = |values: Vec<AxisValue>| {
            space_with(values, 100, 1).enumerate().unwrap()[0].clone()
        };
        let pa = point(vec![base]);
        let pb = point(vec![other]);
        if cfg_a == cfg_b {
            prop_assert_eq!(pa.key, pb.key);
        } else {
            prop_assert_ne!(pa.key, pb.key);
            prop_assert_ne!(cfg_a.stable_hash(), cfg_b.stable_hash());
        }
    }

    /// Backend identity is part of the key: for any configuration, the
    /// five backends' keys are pairwise distinct — so a shared store can
    /// never serve one backend's cached result for another's query —
    /// and the default backend's key equals the legacy (pre-backend)
    /// three-part key, so existing stores stay valid.
    #[test]
    fn backends_never_collide_in_the_key_space(
        values in proptest::collection::vec(arb_axis_value(), 0..4),
        scale_milli in 30u64..200,
        seed in 0u64..1000,
    ) {
        let space = space_with(values, scale_milli, seed);
        let backends = ["cycle", "analytical", "cpu", "gpu", "seed"];
        let mut keys = Vec::new();
        for b in backends {
            let points = space.clone().with_backend_id(b).enumerate().unwrap();
            prop_assert_eq!(&points[0].backend, b);
            keys.push(points[0].key);
        }
        let distinct: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
        prop_assert_eq!(distinct.len(), backends.len(), "{:?}", keys);
        // Retargeting an enumerated point reproduces enumeration's key.
        let cycle_points = space.enumerate().unwrap();
        for (b, key) in backends.iter().zip(&keys) {
            prop_assert_eq!(cycle_points[0].with_backend(b).unwrap().key, *key);
        }
    }

    /// Workload identity is part of the key: a different dataset seed or
    /// scale must produce different keys for the same configuration.
    #[test]
    fn differing_workload_changes_key(
        seed_a in 0u64..500, seed_b in 0u64..500,
        scale_a in 50u64..200, scale_b in 50u64..200,
    ) {
        let pa = space_with(vec![], scale_a, seed_a).enumerate().unwrap()[0].clone();
        let pb = space_with(vec![], scale_b, seed_b).enumerate().unwrap()[0].clone();
        if seed_a == seed_b && scale_a == scale_b {
            prop_assert_eq!(pa.key, pb.key);
        } else {
            prop_assert_ne!(pa.key, pb.key);
        }
    }
}

proptest! {
    /// The I/O seam itself must not change behavior: a store written
    /// through `FaultyIo` with zero injected faults is byte-identical to
    /// one written through `RealIo`, and both reload identically.
    #[test]
    fn zero_fault_io_is_byte_identical_to_real_io(
        recs in proptest::collection::vec(
            (
                0u64..u64::MAX,
                1u64..1_000_000,
                1u64..1_000_000_000,
                (0u64..100_000).prop_map(|n| format!("ib@0.{n}=gcn")),
            ),
            1..8,
        ),
    ) {
        use hygcn_dse::store::StoreRecord;
        use hygcn_dse::store_io::{default_sleeper, FaultPlan, FaultyIo, RetryPolicy};
        use std::sync::Arc;

        let dir = std::env::temp_dir().join("hygcn-dse-diff-test");
        std::fs::create_dir_all(&dir).unwrap();
        let real_path = dir.join("diff-real.jsonl");
        let faulty_path = dir.join("diff-faulty.jsonl");
        std::fs::remove_file(&real_path).ok();
        std::fs::remove_file(&faulty_path).ok();

        let record = |&(key, cycles, dram, ref label): &(u64, u64, u64, String)| StoreRecord {
            key,
            label: label.clone(),
            graph_hash: key.rotate_left(17),
            cycles,
            time_s: cycles as f64 * 1e-9,
            energy_j: cycles as f64 * 1e-12,
            dram_bytes: dram,
            report_json: format!("{{\"cycles\": {cycles}}}"),
        };

        let mut real = ResultStore::open(&real_path).unwrap();
        let mut faulty = ResultStore::open_with(
            &faulty_path,
            Arc::new(FaultyIo::new(FaultPlan::none())),
            RetryPolicy::default(),
            default_sleeper(),
        )
        .unwrap();
        for r in &recs {
            real.append(record(r)).unwrap();
            faulty.append(record(r)).unwrap();
        }
        let real_bytes = std::fs::read(&real_path).unwrap();
        let faulty_bytes = std::fs::read(&faulty_path).unwrap();
        prop_assert_eq!(&real_bytes, &faulty_bytes);

        // Cross-reload: each file reopens cleanly under the other impl.
        let reload_real = ResultStore::open(&faulty_path).unwrap();
        let reload_faulty = ResultStore::open_with(
            &real_path,
            Arc::new(FaultyIo::new(FaultPlan::none())),
            RetryPolicy::default(),
            default_sleeper(),
        )
        .unwrap();
        prop_assert_eq!(reload_real.len(), real.len());
        prop_assert_eq!(reload_faulty.len(), real.len());
        prop_assert!(reload_real.quarantined().is_empty());
        std::fs::remove_file(&real_path).ok();
        std::fs::remove_file(&faulty_path).ok();
    }

    /// A kill injected at an arbitrary byte offset never corrupts the
    /// records below the boundary: reopening quarantines nothing,
    /// truncates at most the in-flight record, and keeps every fully
    /// persisted prefix record readable.
    #[test]
    fn arbitrary_byte_kills_lose_at_most_the_in_flight_record(
        kill_byte in 0u64..4096,
        n in 1usize..6,
    ) {
        use hygcn_dse::store::StoreRecord;
        use hygcn_dse::store_io::{default_sleeper, FaultPlan, FaultyIo, RetryPolicy};
        use std::sync::Arc;

        let dir = std::env::temp_dir().join("hygcn-dse-killbyte-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("kill-{kill_byte}-{n}.jsonl"));
        std::fs::remove_file(&path).ok();

        let record = |i: usize| StoreRecord {
            key: i as u64 + 1,
            label: format!("point-{i}"),
            graph_hash: 42,
            cycles: 1000 + i as u64,
            time_s: 1e-6,
            energy_j: 1e-9,
            dram_bytes: 64,
            report_json: format!("{{\"cycles\": {}}}", 1000 + i),
        };

        let mut store = ResultStore::open_with(
            &path,
            Arc::new(FaultyIo::new(FaultPlan::kill_at_byte(kill_byte))),
            RetryPolicy::none(),
            default_sleeper(),
        )
        .unwrap();
        let mut appended = 0usize;
        for i in 0..n {
            match store.append(record(i)) {
                Ok(()) => appended += 1,
                Err(_) => break,
            }
        }
        drop(store);

        let reopened = ResultStore::open(&path).unwrap();
        prop_assert!(reopened.quarantined().is_empty(), "{:?}", reopened.quarantined());
        // Exactly the fully appended records survive: the in-flight
        // (torn) one is lost, nothing below it is.
        prop_assert_eq!(reopened.len(), appended);
        // Every surviving record is bit-exact.
        for i in 0..reopened.len() {
            prop_assert_eq!(reopened.get(i as u64 + 1).unwrap(), &record(i));
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn empty_campaigns_error_cleanly() {
    let empty = ConfigSpace::new(vec![], vec![ModelKind::Gcn]);
    match Campaign::new(empty).run() {
        Err(DseError::Spec(msg)) => assert!(msg.contains("workload"), "{msg}"),
        other => panic!("expected Spec error, got {other:?}"),
    }
    let no_models = ConfigSpace::new(vec![WorkloadSpec::dataset(DatasetKey::Ib, 0.1, 1)], vec![]);
    assert!(matches!(
        Campaign::new(no_models).run(),
        Err(DseError::Spec(_))
    ));
}

/// A 1-point campaign's stored report is bit-identical to running the
/// simulator directly on the same config+workload — the campaign adds
/// caching and orchestration, never drift. (The direct run is exactly
/// what the PR 2 golden/oracle harness pins, so this transitively ties
/// campaign storage to those suites.)
#[test]
fn one_point_campaign_matches_direct_simulate() {
    let spec = WorkloadSpec::dataset(DatasetKey::Ib, 0.1, 7);
    let space = ConfigSpace::new(vec![spec.clone()], vec![ModelKind::Gin])
        .with_axis(Axis::parse("aggbuf-mb", "8").unwrap());
    let report = Campaign::new(space).run().unwrap();
    assert_eq!(report.points.len(), 1);

    let graph = spec.build().unwrap();
    let model = GcnModel::new(ModelKind::Gin, graph.feature_len(), MODEL_SEED).unwrap();
    let direct = Simulator::new(report.points[0].point().config.clone())
        .simulate(&graph, &model)
        .unwrap();
    let p = report.points[0].expect_done();
    assert_eq!(p.report_json, direct.to_json_compact());
    assert_eq!(p.cycles, direct.cycles);
    assert_eq!(p.dram_bytes, direct.dram_bytes());
}

/// Interrupting a campaign (simulated by pre-seeding the store with a
/// strict subset of the points) and re-running executes exactly the
/// missing points; a further unchanged re-run performs zero simulations.
#[test]
fn killed_campaign_resumes_and_rerun_is_all_hits() {
    let dir = std::env::temp_dir().join("hygcn-dse-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    let store_path = dir.join("campaign.jsonl");
    std::fs::remove_file(&store_path).ok();

    let space = || {
        ConfigSpace::new(
            vec![WorkloadSpec::dataset(DatasetKey::Ib, 0.1, 1)],
            vec![ModelKind::Gcn],
        )
        .with_axis(Axis::parse("aggbuf-mb", "4,16").unwrap())
        .with_axis(Axis::parse("sparsity", "on,off").unwrap())
    };

    // Full run to completion, then keep only the first two store lines —
    // the on-disk state of a campaign killed mid-flight.
    let full = Campaign::new(space())
        .with_store(&store_path)
        .run()
        .unwrap();
    assert_eq!((full.simulated, full.cache_hits), (4, 0));
    let content = std::fs::read_to_string(&store_path).unwrap();
    let kept: Vec<&str> = content.lines().take(2).collect();
    std::fs::write(&store_path, format!("{}\n", kept.join("\n"))).unwrap();

    let resumed = Campaign::new(space())
        .with_store(&store_path)
        .run()
        .unwrap();
    assert_eq!((resumed.simulated, resumed.cache_hits), (2, 2));
    // The resumed campaign reproduces the full run's results exactly.
    for (a, b) in full.points.iter().zip(&resumed.points) {
        assert_eq!(a.expect_done().report_json, b.expect_done().report_json);
    }

    let rerun = Campaign::new(space())
        .with_store(&store_path)
        .run()
        .unwrap();
    assert_eq!((rerun.simulated, rerun.cache_hits), (0, 4));
    for (a, b) in full.points.iter().zip(&rerun.points) {
        let (a, b) = (a.expect_done(), b.expect_done());
        assert_eq!(a.report_json, b.report_json);
        assert!(b.cached);
    }

    // The store file holds exactly the four points, each parseable.
    let store = ResultStore::open(&store_path).unwrap();
    assert_eq!(store.len(), 4);
    std::fs::remove_file(&store_path).ok();
}

/// Sampled spaces cache-key consistently too: a sampled subset re-run
/// hits its own cache.
#[test]
fn sampled_campaign_reruns_from_cache() {
    let dir = std::env::temp_dir().join("hygcn-dse-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    let store_path = dir.join("sampled.jsonl");
    std::fs::remove_file(&store_path).ok();
    let space = || {
        ConfigSpace::new(
            vec![WorkloadSpec::dataset(DatasetKey::Ib, 0.1, 1)],
            vec![ModelKind::Gcn],
        )
        .with_axis(Axis::parse("aggbuf-mb", "2,4,8,16").unwrap())
        .with_sample(SpaceSample {
            max_points: 2,
            seed: 11,
        })
    };
    let first = Campaign::new(space())
        .with_store(&store_path)
        .run()
        .unwrap();
    assert_eq!((first.simulated, first.cache_hits), (2, 0));
    let second = Campaign::new(space())
        .with_store(&store_path)
        .run()
        .unwrap();
    assert_eq!((second.simulated, second.cache_hits), (0, 2));
    std::fs::remove_file(&store_path).ok();
}
