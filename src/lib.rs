//! # hygcn-suite
//!
//! Workspace facade for the Rust reproduction of *HyGCN: A GCN
//! Accelerator with Hybrid Architecture* (HPCA 2020).
//!
//! Re-exports every sub-crate under one roof so examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! * [`graph`] — graph storage, partitioning, windows, sampling, datasets.
//! * [`tensor`] — dense matrices, fixed point, MLPs.
//! * [`gcn`] — the four benchmark models and the golden-model executor.
//! * [`mem`] — HBM timing model, access coordination, on-chip buffers.
//! * [`baseline`] — PyG-CPU / PyG-GPU platform models.
//! * [`core`] — the HyGCN accelerator simulator.
//! * [`dse`] — design-space-exploration campaigns: cached, resumable
//!   multi-axis sweeps with Pareto reporting.
//! * [`obs`] — zero-overhead phase tracing and metrics: scoped spans,
//!   counters, Chrome-trace export. Collection is off by default and
//!   never perturbs simulation results (see `tests/observability.rs`).
//!
//! ## Quickstart
//!
//! ```
//! use hygcn_suite::core::{HyGcnConfig, Simulator};
//! use hygcn_suite::gcn::model::{GcnModel, ModelKind};
//! use hygcn_suite::graph::generator::preferential_attachment;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = preferential_attachment(128, 3, 1)?.with_feature_len(64);
//! let model = GcnModel::new(ModelKind::Gcn, 64, 42)?;
//! let report = Simulator::new(HyGcnConfig::default()).simulate(&graph, &model)?;
//! println!("simulated {} cycles", report.cycles);
//! # Ok(())
//! # }
//! ```

pub use hygcn_baseline as baseline;
pub use hygcn_core as core;
pub use hygcn_dse as dse;
pub use hygcn_gcn as gcn;
pub use hygcn_graph as graph;
pub use hygcn_mem as mem;
pub use hygcn_obs as obs;
pub use hygcn_tensor as tensor;
